#include "cfs/minicfs.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "datapath/pipeline.h"
#include "ecdag/dag.h"
#include "ecdag/executor.h"
#include "obs/trace.h"
#include "placement/replica_layout.h"
#include "qos/qos.h"
#include "store/mem_store.h"
#include "store/mmap_store.h"

namespace ear::cfs {

MiniCfs::MiniCfs(const CfsConfig& config, std::unique_ptr<Transport> transport)
    : config_(config),
      topo_(config.racks, config.nodes_per_rack),
      transport_(std::move(transport)),
      policy_(config.use_ear
                  ? make_encoding_aware_replication(topo_, config.placement,
                                                    config.seed)
                  : make_random_replication(topo_, config.placement,
                                            config.seed)),
      cache_(config.cache_bytes > 0
                 ? std::make_unique<datapath::BlockCache>(config.cache_bytes)
                 : nullptr),
      codec_(erasure::make_codec(config.codec_family, config.placement.code.n,
                                 config.placement.code.k,
                                 config.construction)),
      ns_(config.namespace_shards),
      node_alive_(static_cast<size_t>(topo_.node_count())),
      rng_(config.seed ^ 0xdeadbeefULL),
      ctr_blocks_written_(
          &obs::Registry::instance().counter("cfs.blocks_written")),
      ctr_stripes_encoded_(
          &obs::Registry::instance().counter("cfs.stripes_encoded")),
      ctr_degraded_reads_(
          &obs::Registry::instance().counter("cfs.degraded_reads")),
      ctr_degraded_read_bytes_(
          &obs::Registry::instance().counter("cfs.degraded_read_bytes")),
      ctr_repairs_(&obs::Registry::instance().counter("cfs.blocks_repaired")),
      hist_encode_s_(&obs::Registry::instance().histogram(
          "cfs.encode_stripe_seconds",
          {0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30, 60})) {
  if (config_.block_size % static_cast<Bytes>(codec_->alpha()) != 0) {
    throw std::invalid_argument(
        std::string("block_size must be divisible by the codec's "
                    "sub-packetization: ") +
        codec_->name() + " needs alpha=" + std::to_string(codec_->alpha()));
  }
  revive_all();
  datanodes_.reserve(static_cast<size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    datanodes_.push_back(make_store(i));
  }
}

MiniCfs::~MiniCfs() = default;

// ----------------------------------------------------------------- stores

std::unique_ptr<store::BlockStore> MiniCfs::make_store(NodeId node) const {
  switch (config_.store_backend) {
    case store::StoreBackend::kMem:
      return std::make_unique<store::MemBlockStore>();
    case store::StoreBackend::kMmap: {
      if (config_.store_dir.empty()) {
        throw std::invalid_argument(
            "CfsConfig::store_dir is required for the mmap store backend");
      }
      char sub[16];
      std::snprintf(sub, sizeof(sub), "node-%04d", node);
      store::MmapStoreOptions options;
      options.segment_bytes = config_.store_segment_bytes;
      return std::make_unique<store::MmapBlockStore>(
          config_.store_dir + "/" + sub, options);
    }
  }
  throw std::invalid_argument("unknown store backend");
}

void MiniCfs::set_transport(std::unique_ptr<Transport> transport) {
  std::lock_guard<std::mutex> lock(transport_mu_);
  if (transfers_in_flight_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error(
        "set_transport while data movement is in flight; quiesce workers "
        "first (see minicfs.h)");
  }
  transport_ = std::move(transport);
}

void MiniCfs::store(NodeId node, BlockId block, datapath::BlockBuffer bytes) {
  datanodes_[static_cast<size_t>(node)]->put(block, std::move(bytes));
}

datapath::BlockBuffer MiniCfs::fetch(NodeId node, BlockId block) const {
  const store::BlockStore& dn = *datanodes_[static_cast<size_t>(node)];
  auto bytes = dn.get(block);
  if (!bytes) {
    // Name everything a post-mortem needs: which replica map entry was
    // stale, which node's store, and which backend was serving it.
    throw std::runtime_error(
        "fetch: block " + std::to_string(block) + " not on node " +
        std::to_string(node) + " (" + dn.name() + " store holding " +
        std::to_string(dn.block_count()) + " blocks)");
  }
  return *std::move(bytes);  // shared reference, no byte copy
}

datapath::BlockBuffer MiniCfs::fetch_range(NodeId node, BlockId block,
                                           size_t offset, size_t len) const {
  const store::BlockStore& dn = *datanodes_[static_cast<size_t>(node)];
  auto bytes = dn.get_range(block, offset, len);
  if (!bytes) {
    throw std::runtime_error(
        "fetch_range: block " + std::to_string(block) + " [" +
        std::to_string(offset) + ", +" + std::to_string(len) +
        ") not on node " + std::to_string(node) + " (" + dn.name() +
        " store holding " + std::to_string(dn.block_count()) + " blocks)");
  }
  return *std::move(bytes);  // aliases the stored allocation, no byte copy
}

void MiniCfs::erase(NodeId node, BlockId block) {
  store::BlockStore& dn = *datanodes_[static_cast<size_t>(node)];
  if (!dn.erase(block)) {
    throw std::runtime_error(
        "erase: block " + std::to_string(block) + " not on node " +
        std::to_string(node) + " (" + dn.name() + " store holding " +
        std::to_string(dn.block_count()) + " blocks)");
  }
  // Replica deleted (encode step (iii) or a future GC): readers must not
  // keep serving it once the last copy is gone, so drop cached copies now.
  cache_invalidate(block);
}

// -------------------------------------------------------------- block cache

void MiniCfs::cache_fill(NodeId reader, BlockId block,
                         const datapath::BlockBuffer& bytes) {
  if (!cache_) return;
  // Fills are data movement under the set_transport contract: the read
  // that produced `bytes` must still hold its TransferScope, so a
  // transport swap can never interleave with a fill (see minicfs.h).
  if (transfers_in_flight_.load(std::memory_order_relaxed) == 0) {
    throw std::logic_error(
        "cache fill outside a TransferScope; fills must be fenced by the "
        "set_transport in-flight guard (see minicfs.h)");
  }
  cache_->insert(reader, block, bytes);
}

void MiniCfs::cache_invalidate(BlockId block) {
  if (cache_) cache_->invalidate_block(block);
}

// ------------------------------------------------------------ write path

BlockId MiniCfs::write_block(std::span<const uint8_t> data,
                             std::optional<NodeId> writer) {
  if (static_cast<Bytes>(data.size()) != config_.block_size) {
    throw std::invalid_argument("write_block: data must be one block");
  }
  obs::Span span("cfs.write_block", "cfs");
  span.arg("bytes", config_.block_size);
  qos::OpScope op(qos::TrafficClass::kForegroundWrite);
  TransferScope in_flight(*this);

  BlockPlacement placement;
  int position = 0;
  {
    // The id draw stays inside policy_mu_ so the id order matches the
    // stripe-assembly order for a given client schedule (the determinism
    // contract: ids are dense and placement is a pure function of them).
    std::lock_guard<std::mutex> lock(policy_mu_);
    const BlockId id = next_block_id_.fetch_add(1, std::memory_order_relaxed);
    placement = policy_->place_block(id, writer);
    position =
        static_cast<int>(policy_->stripe(placement.stripe).blocks.size()) - 1;
  }

  // Replication pipeline: hop h streams the block from replica h to h+1.
  // Hops overlap (HDFS streams 64 KB packets down the chain), so they run
  // concurrently here.
  const auto& replicas = placement.replicas;
  const qos::Captured qctx = qos::capture();  // hops charge the writer's flow
  std::vector<std::thread> hops;
  for (size_t h = 0; h + 1 < replicas.size(); ++h) {
    hops.emplace_back([this, &replicas, h, qctx] {
      qos::InstallScope scope(qctx);
      transport_->transfer(replicas[h], replicas[h + 1], config_.block_size);
    });
  }
  for (auto& t : hops) t.join();

  // One physical copy off the caller's buffer; every replica shares it.
  const datapath::BlockBuffer bytes = datapath::BlockBuffer::copy_of(data);
  for (const NodeId n : replicas) {
    store(n, placement.block, bytes);
  }
  ns_.commit_new_block(placement.block,
                       std::vector<NodeId>(replicas.begin(), replicas.end()),
                       placement.stripe, position);
  ctr_blocks_written_->add();
  return placement.block;
}

// ------------------------------------------------------------- read path

NodeId MiniCfs::pick_source(const std::vector<NodeId>& locations, NodeId dst,
                            bool count_cross_rack_download) {
  // Local copy first.
  for (const NodeId n : locations) {
    if (n == dst && node_alive_[static_cast<size_t>(n)]) return n;
  }
  // Same-rack copy next.
  std::vector<NodeId> same_rack, remote;
  for (const NodeId n : locations) {
    if (!node_alive_[static_cast<size_t>(n)]) continue;
    (topo_.same_rack(n, dst) ? same_rack : remote).push_back(n);
  }
  const auto pick = [this](const std::vector<NodeId>& candidates) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    return candidates[rng_.index(candidates.size())];
  };
  if (!same_rack.empty()) return pick(same_rack);
  if (!remote.empty()) {
    if (count_cross_rack_download) ++encode_cross_rack_downloads_;
    return pick(remote);
  }
  return kInvalidNode;
}

datapath::BlockBuffer MiniCfs::read_block(BlockId block, NodeId reader) {
  // Default class for an unwrapped caller; a workload's QosScope — or the
  // kRepair scope of an enclosing repair_block — wins (see qos/qos.h).
  qos::OpScope op(qos::TrafficClass::kForegroundRead);
  TransferScope in_flight(*this);
  // Reader-side cache first: a hit is served from the reader's own memory —
  // zero copies, zero transport bytes, no source involved at all.
  if (cache_) {
    if (auto cached = cache_->lookup(reader, block)) {
      return *std::move(cached);
    }
  }
  const auto locations = ns_.find_locations(block);
  if (!locations) {
    throw std::runtime_error("unknown block " + std::to_string(block));
  }
  const NodeId src = pick_source(*locations, reader, /*count=*/false);
  if (src != kInvalidNode) {
    transport_->transfer(src, reader, config_.block_size);
    datapath::BlockBuffer bytes = fetch(src, block);
    cache_fill(reader, block, bytes);
    return bytes;
  }
  datapath::BlockBuffer rebuilt = degraded_read(block, reader);
  cache_fill(reader, block, rebuilt);
  return rebuilt;
}

datapath::BlockBuffer MiniCfs::degraded_read(BlockId block, NodeId reader) {
  // Reconstruct from any k live blocks of the stripe.
  qos::OpScope op(qos::TrafficClass::kForegroundRead);
  obs::Span span("cfs.degraded_read", "cfs");
  span.arg("block", block);
  ctr_degraded_reads_->add();
  const auto stripe_pos = ns_.find_block_stripe(block);
  if (!stripe_pos) {
    throw std::runtime_error("block lost and not in any stripe");
  }
  const StripeId stripe = stripe_pos->first;
  const int wanted_pos = stripe_pos->second;
  const auto meta = ns_.find_stripe(stripe);
  if (!meta || !meta->encoded) {
    throw std::runtime_error("block lost before its stripe was encoded");
  }
  std::vector<BlockId> stripe_blocks = meta->data_blocks;  // stripe order
  stripe_blocks.insert(stripe_blocks.end(), meta->parity_blocks.begin(),
                       meta->parity_blocks.end());

  // Live positions first, sources later: the codec's plan decides which
  // positions actually serve the read (scalar codes pick the first k,
  // LRC a local group, Clay every helper), and pick_source draws from the
  // shared RNG, so it must only run for positions the plan names — in plan
  // order — to keep the scalar path's draw sequence identical to the
  // pre-codec one.
  std::vector<int> live_ids;
  std::vector<BlockId> live_blocks;  // parallel to live_ids
  for (int pos = 0; pos < static_cast<int>(stripe_blocks.size()); ++pos) {
    if (pos == wanted_pos) continue;
    const BlockId b = stripe_blocks[static_cast<size_t>(pos)];
    const auto locs = ns_.find_locations(b);
    if (!locs) continue;
    const bool live = std::any_of(locs->begin(), locs->end(), [this](NodeId n) {
      return node_alive_[static_cast<size_t>(n)].load();
    });
    if (!live) continue;
    live_ids.push_back(pos);
    live_blocks.push_back(b);
  }
  if (static_cast<int>(live_ids.size()) < codec_->k()) {
    throw std::runtime_error("stripe unrecoverable: fewer than k live blocks");
  }

  const Bytes sub = codec_->sub_block_size(config_.block_size);
  datapath::MutableBlockBuffer out(static_cast<size_t>(config_.block_size));

  erasure::RepairPlan plan;
  if (codec_->plan_repair(wanted_pos, live_ids, &plan)) {
    // Plan-driven repair: fetch only the sub-block ranges the plan names
    // (whole blocks at alpha == 1) and run the coefficient schedule.  The
    // transport is charged exactly the plan's bytes — the vector-codec
    // repair saving is physical, not an accounting fiction.
    std::vector<NodeId> sources;          // per plan source
    std::vector<datapath::BlockBuffer> unit_bufs;
    std::vector<erasure::BlockView> units;       // plan unit order
    std::vector<NodeId> unit_nodes;              // source node per unit
    for (const erasure::RepairSource& src : plan.sources) {
      const auto it = std::find(live_ids.begin(), live_ids.end(), src.id);
      const BlockId b =
          live_blocks[static_cast<size_t>(it - live_ids.begin())];
      const auto locs = ns_.find_locations(b);
      const NodeId s = pick_source(*locs, reader, /*count=*/false);
      sources.push_back(s);
      for (const int z : src.sub_blocks) {
        unit_bufs.push_back(fetch_range(
            s, b, static_cast<size_t>(z) * static_cast<size_t>(sub),
            static_cast<size_t>(sub)));
        units.emplace_back(unit_bufs.back().span());
        unit_nodes.push_back(s);
      }
    }
    ctr_degraded_read_bytes_->add(
        static_cast<int64_t>(plan.bytes_read(config_.block_size)));

    std::vector<erasure::MutBlockView> out_subs;
    for (int z = 0; z < plan.alpha; ++z) {
      out_subs.emplace_back(out.window(
          static_cast<size_t>(z) * static_cast<size_t>(sub),
          static_cast<size_t>(sub)));
    }

    if (config_.ecdag_enable) {
      // Distributed reconstruction (src/ecdag/): the plan's alpha x units
      // coefficient schedule lowered into a rack-aware partial-sum tree
      // rooted at the reader, one DAG output per rebuilt sub-block.  A rack
      // holding several units XOR-combines its coeff x unit terms locally
      // and ships one chunk per output instead of one per unit — byte-
      // identical to the single-node schedule (and to the pre-codec 1 x k
      // decode DAG at alpha == 1).
      const std::vector<NodeId> out_nodes(static_cast<size_t>(plan.alpha),
                                          reader);
      const ecdag::EcDag dag = ecdag::build_aggregation_dag(
          plan.coeffs, unit_nodes, out_nodes, reader, topo_);
      ecdag::ExecOptions opts;
      opts.unit_size = sub;
      opts.preferred_chunk = transport_->preferred_chunk();
      ecdag::execute(
          dag, topo_, units, out_subs,
          [this](NodeId src, NodeId dst, Bytes len) {
            transport_->transfer(src, dst, len);
          },
          nullptr, opts);
      return std::move(out).seal();
    }

    // Fan-out: one fetch lane per source node (or read_fanout_lanes of
    // them, round-robin), chunked over the sub-block window so the
    // incremental schedule overlaps the transfers; each source ships
    // len x (its fetched sub-blocks) per chunk.  lanes == 1 serializes all
    // sources on one lane — the old single-lane loop, and at alpha == 1
    // the whole stage is byte- and bytes-identical to the pre-codec path.
    const int nsources = static_cast<int>(plan.sources.size());
    const int lanes = config_.read_fanout_lanes <= 0
                          ? nsources
                          : std::min(config_.read_fanout_lanes, nsources);
    const datapath::ChunkPlan chunks{sub, transport_->preferred_chunk()};
    datapath::StagedPipeline::run_fanout(
        chunks.count(), lanes,
        /*fetch=*/
        [&](int lane, int c) {
          const Bytes len = static_cast<Bytes>(chunks.len(c));
          for (int s = lane; s < nsources; s += lanes) {
            const auto& src = plan.sources[static_cast<size_t>(s)];
            transport_->transfer(
                sources[static_cast<size_t>(s)], reader,
                len * static_cast<Bytes>(src.sub_blocks.size()));
          }
        },
        /*compute=*/
        [&](int c) {
          erasure::ErasureCodec::apply_plan_chunk(plan, units, out.span(),
                                                  chunks.offset(c),
                                                  chunks.len(c));
        });
    return std::move(out).seal();
  }

  // No schedule-driven plan for this pattern (e.g. an LRC group helper is
  // down): whole-block fallback — ship the first k live blocks to the
  // reader and reconstruct.
  std::vector<int> chosen_ids(live_ids.begin(),
                              live_ids.begin() + codec_->k());
  std::vector<datapath::BlockBuffer> bufs;
  std::vector<erasure::BlockView> views;
  for (size_t i = 0; i < chosen_ids.size(); ++i) {
    const BlockId b = live_blocks[i];
    const auto locs = ns_.find_locations(b);
    const NodeId s = pick_source(*locs, reader, /*count=*/false);
    transport_->transfer(s, reader, config_.block_size);
    bufs.push_back(fetch(s, b));
    views.emplace_back(bufs.back().span());
  }
  ctr_degraded_read_bytes_->add(static_cast<int64_t>(chosen_ids.size()) *
                                config_.block_size);
  std::string why;
  if (!codec_->reconstruct(chosen_ids, views, {wanted_pos}, {out.span()},
                           &why)) {
    throw std::runtime_error("degraded read decode failed: " + why);
  }
  return std::move(out).seal();
}

// -------------------------------------------------------------- encoding

std::vector<StripeId> MiniCfs::sealed_stripes() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  return policy_->sealed_stripes();
}

void MiniCfs::encode_stripe(StripeId stripe,
                            std::optional<NodeId> encoder_override) {
  obs::Span stripe_span("cfs.encode_stripe", "cfs");
  stripe_span.arg("stripe", stripe);
  qos::OpScope op(qos::TrafficClass::kBackgroundEncode);
  const int64_t encode_begin_us = obs::now_us();
  TransferScope in_flight(*this);
  if (ns_.stripe_encoded(stripe)) {
    throw std::runtime_error("stripe already encoded");
  }
  EncodePlan plan;
  std::vector<BlockId> data_blocks;
  std::vector<std::vector<NodeId>> replica_sets;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    const StripeInfo& info = policy_->stripe(stripe);
    if (!info.sealed(config_.placement.code.k)) {
      throw std::runtime_error("stripe not sealed");
    }
    plan = policy_->plan_encoding(stripe);
    data_blocks = info.blocks;
    replica_sets = info.replicas;
  }
  if (encoder_override) plan.encoder = *encoder_override;

  const int k = codec_->k();
  const int m = codec_->m();
  const int alpha = codec_->alpha();
  const Bytes sub = codec_->sub_block_size(config_.block_size);

  // Resolve one live source per data block and take zero-copy references
  // to the stored bytes before moving anything, so a dead stripe fails
  // fast with no metadata mutated.
  std::vector<NodeId> sources(static_cast<size_t>(k));
  std::vector<datapath::BlockBuffer> data_bufs;
  data_bufs.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const NodeId src = pick_source(replica_sets[static_cast<size_t>(i)],
                                   plan.encoder, /*count=*/true);
    if (src == kInvalidNode) {
      throw std::runtime_error("no live replica for encoding download");
    }
    sources[static_cast<size_t>(i)] = src;
    data_bufs.push_back(fetch(src, data_blocks[static_cast<size_t>(i)]));
  }

  std::vector<erasure::BlockView> data_views;
  data_views.reserve(data_bufs.size());
  for (const auto& b : data_bufs) data_views.emplace_back(b.span());
  std::vector<datapath::MutableBlockBuffer> parity_bufs;
  std::vector<erasure::MutBlockView> parity_views;
  parity_bufs.reserve(static_cast<size_t>(m));
  parity_views.reserve(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    parity_bufs.emplace_back(static_cast<size_t>(config_.block_size));
    parity_views.emplace_back(parity_bufs.back().span());
  }

  erasure::Matrix sched;
  if (config_.ecdag_enable && codec_->encode_schedule(&sched)) {
    // Distributed encode (src/ecdag/): the codec's (m*alpha) x (k*alpha)
    // sub-block generator lowered into a rack-aware partial-sum tree rooted
    // at the encoder.  Each remote rack with more terms than outputs
    // XOR-combines its coeff x unit products locally and ships one chunk
    // per output across the core switch; the result is byte-identical
    // (GF(2^8) addition is XOR, associative).  At alpha == 1 the schedule
    // is exactly the generator's parity rows — the pre-codec DAG.
    std::vector<erasure::BlockView> data_units;
    std::vector<NodeId> unit_nodes;
    for (int i = 0; i < k; ++i) {
      for (int z = 0; z < alpha; ++z) {
        data_units.push_back(data_views[static_cast<size_t>(i)].subspan(
            static_cast<size_t>(z) * static_cast<size_t>(sub),
            static_cast<size_t>(sub)));
        unit_nodes.push_back(sources[static_cast<size_t>(i)]);
      }
    }
    std::vector<erasure::MutBlockView> parity_units;
    std::vector<NodeId> out_nodes;
    for (int j = 0; j < m; ++j) {
      for (int z = 0; z < alpha; ++z) {
        parity_units.push_back(parity_views[static_cast<size_t>(j)].subspan(
            static_cast<size_t>(z) * static_cast<size_t>(sub),
            static_cast<size_t>(sub)));
        out_nodes.push_back(plan.parity[static_cast<size_t>(j)]);
      }
    }
    const ecdag::EcDag dag = ecdag::build_aggregation_dag(
        sched, unit_nodes, out_nodes, plan.encoder, topo_);
    ecdag::ExecOptions opts;
    opts.unit_size = sub;
    opts.preferred_chunk = transport_->preferred_chunk();
    opts.charge_local_reads = true;
    ecdag::execute(
        dag, topo_, data_units, parity_units,
        [this](NodeId src, NodeId dst, Bytes len) {
          transport_->transfer(src, dst, len);
        },
        [this](NodeId node, Bytes len) { transport_->local_read(node, len); },
        opts);
  } else {
    // Staged pipeline: fetch chunk c of every data block to the encoder,
    // encode it into the parity windows, and push the finished parity chunks
    // out — all three stages overlap across chunks, so the upload rides the
    // encoder's up-link while later fetches still occupy its down-link
    // (RapidRAID-style encode ≈ k block-times instead of k + m).  The chunk
    // window is sub-block relative: chunk c covers bytes [offset, offset+len)
    // of every sub-block, so each block ships len * alpha bytes per chunk
    // (at alpha == 1 this is the pre-codec whole-block chunking, exactly).
    const datapath::ChunkPlan chunks{sub, transport_->preferred_chunk()};
    datapath::StagedPipeline::run(
        chunks.count(),
        /*fetch=*/
        [&](int c) {
          const Bytes len =
              static_cast<Bytes>(chunks.len(c)) * static_cast<Bytes>(alpha);
          for (int i = 0; i < k; ++i) {
            const NodeId src = sources[static_cast<size_t>(i)];
            if (src != plan.encoder) {
              transport_->transfer(src, plan.encoder, len);
            } else {
              transport_->local_read(src, len);
            }
          }
        },
        /*compute=*/
        [&](int c) {
          codec_->encode_chunk(data_views, parity_views, chunks.offset(c),
                               chunks.len(c));
        },
        /*upload=*/
        [&](int c) {
          const Bytes len =
              static_cast<Bytes>(chunks.len(c)) * static_cast<Bytes>(alpha);
          for (int j = 0; j < m; ++j) {
            const NodeId dst = plan.parity[static_cast<size_t>(j)];
            if (dst != plan.encoder) {
              transport_->transfer(plan.encoder, dst, len);
            }
          }
        });
  }

  std::vector<BlockId> parity_ids(static_cast<size_t>(m));
  const BlockId parity_base =
      next_block_id_.fetch_add(m, std::memory_order_relaxed);
  for (int j = 0; j < m; ++j) {
    parity_ids[static_cast<size_t>(j)] = parity_base + j;
  }
  for (int j = 0; j < m; ++j) {
    store(plan.parity[static_cast<size_t>(j)],
          parity_ids[static_cast<size_t>(j)],
          std::move(parity_bufs[static_cast<size_t>(j)]).seal());
  }

  // Step (iii): delete redundant replicas, register the encoded layout.
  for (const auto& [block_idx, node] : plan.deletions) {
    erase(node, data_blocks[static_cast<size_t>(block_idx)]);
  }
  ns_.commit_encoded_stripe(stripe, data_blocks, plan.kept, parity_ids,
                            plan.parity);
  ctr_stripes_encoded_->add();
  hist_encode_s_->record(
      static_cast<double>(obs::now_us() - encode_begin_us) / 1e6);
}

bool MiniCfs::is_encoded(StripeId stripe) const {
  return ns_.stripe_encoded(stripe);
}

StripeMeta MiniCfs::stripe_meta(StripeId stripe) const {
  auto meta = ns_.find_stripe(stripe);
  if (!meta) {
    throw std::runtime_error("unknown stripe");
  }
  return *std::move(meta);
}

// ------------------------------------------------------- failure / repair

void MiniCfs::kill_node(NodeId node) {
  node_alive_[static_cast<size_t>(node)] = false;
}

void MiniCfs::kill_rack(RackId rack) {
  for (const NodeId n : topo_.nodes_in_rack(rack)) kill_node(n);
}

void MiniCfs::revive_node(NodeId node) {
  node_alive_[static_cast<size_t>(node)] = true;
  // A revived store changes which locations are servable; cached entries
  // for its blocks predate that and must be re-validated on next read.
  // (The constructor's revive_all() runs before datanodes_ exists — guard.)
  if (cache_ && static_cast<size_t>(node) < datanodes_.size()) {
    for (const BlockId b : datanodes_[static_cast<size_t>(node)]->block_ids()) {
      cache_->invalidate_block(b);
    }
  }
}

MiniCfs::RestartReport MiniCfs::restart_node(NodeId node) {
  RestartReport report;
  // 1. Reopen the store from its backing medium.  The old instance is
  // destroyed first; outstanding BlockBuffer views (readers, the cache)
  // stay valid because buffers own their allocation / mapping.  For the
  // mmap backend this replays the crash-consistent directory (truncating
  // any torn tail); for the mem backend the node comes back empty.
  datanodes_[static_cast<size_t>(node)].reset();
  datanodes_[static_cast<size_t>(node)] = make_store(node);
  const store::BlockStore& dn = *datanodes_[static_cast<size_t>(node)];

  std::vector<BlockId> surviving = dn.block_ids();
  report.blocks_recovered = static_cast<int64_t>(surviving.size());
  const std::set<BlockId> surviving_set(surviving.begin(), surviving.end());

  node_alive_[static_cast<size_t>(node)] = true;

  // 2. Block report: reconcile the namespace with what actually survived.
  // One snapshot, then per-block point updates (same discipline as
  // restore_redundancy).
  const NamespaceSnapshot snap = namespace_snapshot();
  for (const auto& [block, status] : snap.blocks) {
    const bool listed = std::find(status.locations.begin(),
                                  status.locations.end(),
                                  node) != status.locations.end();
    const bool held = surviving_set.count(block) > 0;
    if (listed && !held) {
      // Lost in the crash (or never committed): prune so reads stop
      // retrying this node and restore_redundancy sees the gap.
      ns_.update_locations(block, [node](std::vector<NodeId>& locs) {
        locs.erase(std::remove(locs.begin(), locs.end(), node), locs.end());
      });
      ++report.locations_pruned;
    } else if (!listed && held) {
      // Survived on disk but the NameNode moved on (e.g. the block was
      // repaired elsewhere while the node was down): re-register the copy —
      // this is what turns a full re-replication into a delta repair.
      ns_.update_locations(block, [node](std::vector<NodeId>& locs) {
        if (std::find(locs.begin(), locs.end(), node) == locs.end()) {
          locs.push_back(node);
        }
      });
      ++report.blocks_reregistered;
    }
    if (listed || held) cache_invalidate(block);
  }

  // 3. Blocks on disk the namespace has forgotten entirely (deleted while
  // the node was down) are garbage — discard them from the store.
  for (const BlockId block : surviving) {
    if (snap.blocks.count(block) == 0) {
      datanodes_[static_cast<size_t>(node)]->erase(block);
      --report.blocks_recovered;
      ++report.stale_blocks_discarded;
      cache_invalidate(block);
    }
  }
  return report;
}

void MiniCfs::revive_rack(RackId rack) {
  for (const NodeId n : topo_.nodes_in_rack(rack)) revive_node(n);
}

void MiniCfs::revive_all() {
  std::fill(node_alive_.begin(), node_alive_.end(), true);
}

bool MiniCfs::node_alive(NodeId node) const {
  return node_alive_[static_cast<size_t>(node)];
}

void MiniCfs::repair_block(BlockId block, NodeId target) {
  // The inner read_block inherits this class: repair traffic is kRepair
  // end-to-end even though it rides the read path.
  qos::OpScope op(qos::TrafficClass::kRepair);
  obs::Span span("cfs.repair_block", "cfs");
  span.arg("block", block);
  span.arg("target", target);
  ctr_repairs_->add();
  datapath::BlockBuffer bytes = read_block(block, target);
  store(target, block, std::move(bytes));
  // Repair-rewrite: the block's servable locations change, so cached
  // copies (including the one the read above just filled) are dropped and
  // re-validated on next read.
  cache_invalidate(block);
  // Drop dead locations, add the repaired copy.
  ns_.update_locations(block, [this, target](std::vector<NodeId>& locs) {
    locs.erase(std::remove_if(locs.begin(), locs.end(),
                              [this](NodeId n) {
                                return !node_alive_[static_cast<size_t>(n)];
                              }),
               locs.end());
    if (std::find(locs.begin(), locs.end(), target) == locs.end()) {
      locs.push_back(target);
    }
  });
}

Bytes MiniCfs::planned_repair_bytes(BlockId block) const {
  const auto stripe_pos = ns_.find_block_stripe(block);
  if (!stripe_pos || !ns_.stripe_encoded(stripe_pos->first)) {
    return config_.block_size;  // replicated: one copy moves
  }
  const auto meta = ns_.find_stripe(stripe_pos->first);
  if (!meta) return config_.block_size;
  std::vector<BlockId> stripe_blocks = meta->data_blocks;
  stripe_blocks.insert(stripe_blocks.end(), meta->parity_blocks.begin(),
                       meta->parity_blocks.end());
  std::vector<int> live_ids;
  for (int pos = 0; pos < static_cast<int>(stripe_blocks.size()); ++pos) {
    if (pos == stripe_pos->second) continue;
    const auto locs = ns_.find_locations(stripe_blocks[static_cast<size_t>(pos)]);
    if (!locs) continue;
    if (std::any_of(locs->begin(), locs->end(), [this](NodeId n) {
          return node_alive_[static_cast<size_t>(n)].load();
        })) {
      live_ids.push_back(pos);
    }
  }
  erasure::RepairPlan plan;
  if (codec_->plan_repair(stripe_pos->second, live_ids, &plan)) {
    return plan.bytes_read(config_.block_size);
  }
  // Whole-stripe decode fallback: k full blocks.
  return config_.block_size * static_cast<Bytes>(codec_->k());
}

// ----------------------------------------------------------- introspection

std::vector<NodeId> MiniCfs::block_locations(BlockId block) const {
  auto locs = ns_.find_locations(block);
  return locs ? *std::move(locs) : std::vector<NodeId>{};
}

int64_t MiniCfs::blocks_stored_on(NodeId node) const {
  return static_cast<int64_t>(
      datanodes_[static_cast<size_t>(node)]->block_count());
}

}  // namespace ear::cfs
