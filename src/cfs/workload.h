// Workload drivers for the MiniCfs testbed experiments (paper §V-A).
//
//  * WriteWorkload      — Poisson stream of single-block writes from random
//    client nodes, recording per-request response times (Experiments A.2 /
//    B.1's write stream).
//  * BackgroundTraffic  — Iperf-style bandwidth hogs: node pairs pushing a
//    constant stream of bytes through the transport (Experiment A.1's UDP
//    injection).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "cfs/minicfs.h"
#include "common/stats.h"
#include "qos/qos.h"

namespace ear::cfs {

class WriteWorkload {
 public:
  // `rate` is the Poisson arrival rate in requests/second (wall clock).
  WriteWorkload(MiniCfs& cfs, double rate, uint64_t seed);
  ~WriteWorkload();

  WriteWorkload(const WriteWorkload&) = delete;
  WriteWorkload& operator=(const WriteWorkload&) = delete;

  // Attributes every write of this workload to a QoS flow (multi-tenant
  // experiments); untagged workloads fall to the per-operation defaults.
  void set_qos(qos::TransferContext ctx) { qctx_ = {ctx, true}; }

  void start();
  // Stops generating, waits for in-flight writes, then returns.
  void stop();

  // (issue time since start(), response seconds) pairs, in issue order.
  std::vector<std::pair<double, double>> samples() const;
  Summary response_summary() const;
  int completed() const { return completed_.load(); }

 private:
  void generator_loop();

  MiniCfs* cfs_;
  double rate_;
  Rng rng_;
  std::vector<uint8_t> payload_;
  qos::Captured qctx_;  // inactive unless set_qos was called

  std::atomic<bool> running_{false};
  std::atomic<int> completed_{0};
  std::thread generator_;
  std::vector<std::thread> requests_;
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> samples_;
  std::chrono::steady_clock::time_point epoch_;
};

// Saturating background streams between fixed node pairs; each stream sends
// `bytes_per_second` continuously in `burst` chunks until stopped.
class BackgroundTraffic {
 public:
  BackgroundTraffic(MiniCfs& cfs,
                    std::vector<std::pair<NodeId, NodeId>> pairs,
                    BytesPerSec bytes_per_second, Bytes burst = 256_KB);
  ~BackgroundTraffic();

  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  // Attributes the injected streams to a QoS flow (defaults to untagged).
  void set_qos(qos::TransferContext ctx) { qctx_ = {ctx, true}; }

  void start();
  void stop();

 private:
  MiniCfs* cfs_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;
  BytesPerSec rate_;
  Bytes burst_;
  qos::Captured qctx_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> streams_;
};

}  // namespace ear::cfs
