// RaidNode — coordinates the asynchronous encoding operation (paper §IV-A).
//
// Mirrors HDFS-RAID's map-only MapReduce encoding job: one map task per
// stripe runs on the shared data-path pool (datapath::WorkerPool), at most
// `map_slots` concurrently, each encoding through MiniCfs::encode_stripe.  Under EAR every plan's encoder node
// already sits in the stripe's core rack (the paper's preferred-node +
// encoding-job-flag JobTracker modifications, §IV-B); the ablation hook
// `scatter_encoders` disables that and assigns uniformly random encoder
// nodes, quantifying what those modifications buy.
#pragma once

#include <vector>

#include "cfs/minicfs.h"
#include "common/stats.h"

namespace ear::cfs {

struct EncodeReport {
  double duration_s = 0;
  double throughput_mbps = 0;  // data-block bytes encoded per second
  // Per-stripe completion times, seconds since the job started (sorted).
  std::vector<double> completion_times;
  int64_t cross_rack_bytes = 0;    // transport delta during the job
  int64_t cross_rack_downloads = 0;  // data blocks fetched across racks
  // Stripes whose encode threw (e.g. a failure killed every replica of a
  // data block mid-job).  encode_stripe mutates no metadata before its
  // download phase succeeds, so these remain sealed and can be retried once
  // redundancy is restored.
  std::vector<StripeId> failed;
};

class RaidNode {
 public:
  RaidNode(MiniCfs& cfs, int map_slots);

  // Encodes all given stripes; blocks until the job finishes.
  EncodeReport encode_stripes(const std::vector<StripeId>& stripes,
                              bool scatter_encoders = false);

 private:
  MiniCfs* cfs_;
  int map_slots_;
};

}  // namespace ear::cfs
