// Cluster state snapshots — the NameNode FsImage role, extended to a full
// in-process cluster image so tests and long experiments can save and
// restore a loaded cluster.
//
// Format: a self-describing little-endian binary stream,
//   magic "EARCKPT<v>" (writer emits version 4; readers accept 2..4,
//   defaulting the fields an older version lacks and rejecting unknown
//   versions with a clear message)
//   cluster config (topology, code, replication, block size; v3+ adds
//   read-path cache bytes and fan-out lanes; v4+ adds the block-store
//   backend, directory and segment size)
//   block locations (block id -> node list)
//   stripe map (data/parity block lists, encoded flag, stripe positions)
//   per-node block stores (block id -> bytes)
//
// Restore builds a MiniCfs whose reads (including degraded reads and
// repair) behave identically to the snapshotted one.  Placement-policy
// internals (open stripes under assembly) are intentionally NOT persisted:
// like a NameNode restart, un-sealed stripes restart assembly from scratch,
// while sealed/encoded state is fully recovered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfs/minicfs.h"

namespace ear::cfs {

// Serializes the cluster into a byte buffer.
std::vector<uint8_t> save_checkpoint(const MiniCfs& cfs);

// Reconstructs a read-only equivalent cluster from a checkpoint.  The
// returned MiniCfs serves reads, degraded reads, repair and failure
// injection; writing new blocks and encoding further stripes continue from
// a fresh placement-policy state.
std::unique_ptr<MiniCfs> load_checkpoint(const std::vector<uint8_t>& image,
                                         std::unique_ptr<Transport> transport);

// Convenience file wrappers.
bool save_checkpoint_file(const MiniCfs& cfs, const std::string& path);
std::unique_ptr<MiniCfs> load_checkpoint_file(
    const std::string& path, std::unique_ptr<Transport> transport);

}  // namespace ear::cfs
