#include "cfs/raidnode.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>

#include "common/rng.h"
#include "datapath/worker_pool.h"
#include "obs/trace.h"
#include "placement/replica_layout.h"
#include "qos/qos.h"

namespace ear::cfs {

RaidNode::RaidNode(MiniCfs& cfs, int map_slots)
    : cfs_(&cfs), map_slots_(map_slots) {}

EncodeReport RaidNode::encode_stripes(const std::vector<StripeId>& stripes,
                                      bool scatter_encoders) {
  using Clock = std::chrono::steady_clock;
  EncodeReport report;
  obs::Span job_span("raid.encode_job", "raid");
  job_span.arg("stripes", static_cast<int64_t>(stripes.size()));
  job_span.arg("map_slots", map_slots_);
  const auto job_start = Clock::now();
  const int64_t cross_before = cfs_->transport().cross_rack_bytes();
  const int64_t downloads_before = cfs_->encode_cross_rack_downloads();

  // Pre-draw one override encoder per stripe before any worker starts:
  // the scatter ablation stays deterministic for a given stripe list, and
  // workers never contend on an RNG mutex mid-job.
  std::vector<std::optional<NodeId>> overrides(stripes.size());
  if (scatter_encoders) {
    Rng scatter_rng(0x5ca77e7ULL);
    for (auto& o : overrides) {
      o = random_node(cfs_->topology(), scatter_rng);
    }
  }

  // One map task per stripe on the shared data-path pool, at most
  // `map_slots` occupying slots at once (HDFS-RAID's map-slot limit).
  std::mutex report_mu;
  // Map tasks run on shared pool threads: hand them the submitting job's
  // (class, tenant) flow — e.g. a conversion job tagged to a tenant keeps
  // its tenant across every encode it fans out.
  const qos::Captured qctx = qos::capture();
  {
    datapath::TaskGroup tasks(datapath::WorkerPool::shared(), map_slots_);
    for (size_t i = 0; i < stripes.size(); ++i) {
      tasks.submit([&, i] {
        qos::InstallScope qscope(qctx);
        try {
          obs::Span task_span("raid.map_task", "raid");
          task_span.arg("stripe", stripes[i]);
          cfs_->encode_stripe(stripes[i], overrides[i]);
        } catch (const std::exception&) {
          // A failure mid-job (dead replicas) aborts this stripe only; the
          // caller retries it after repair.
          std::lock_guard<std::mutex> lock(report_mu);
          report.failed.push_back(stripes[i]);
          return;
        }
        const double t =
            std::chrono::duration<double>(Clock::now() - job_start).count();
        std::lock_guard<std::mutex> lock(report_mu);
        report.completion_times.push_back(t);
      });
    }
    tasks.wait();
  }

  std::sort(report.completion_times.begin(), report.completion_times.end());
  std::sort(report.failed.begin(), report.failed.end());
  report.duration_s =
      std::chrono::duration<double>(Clock::now() - job_start).count();
  const double encoded_mb = to_mb(cfs_->config().block_size) *
                            cfs_->config().placement.code.k *
                            static_cast<double>(stripes.size());
  if (report.duration_s > 0) {
    report.throughput_mbps = encoded_mb / report.duration_s;
  }
  report.cross_rack_bytes =
      cfs_->transport().cross_rack_bytes() - cross_before;
  report.cross_rack_downloads =
      cfs_->encode_cross_rack_downloads() - downloads_before;
  return report;
}

}  // namespace ear::cfs
