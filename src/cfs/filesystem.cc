#include "cfs/filesystem.h"

#include <algorithm>
#include <stdexcept>

namespace ear::cfs {

void FileSystem::create(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path)) {
    throw std::runtime_error("file exists: " + path);
  }
  files_.emplace(path, FileMeta{});
}

std::vector<BlockId> FileSystem::append(const std::string& path,
                                        std::span<const uint8_t> data,
                                        std::optional<NodeId> writer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!files_.count(path)) {
      throw std::runtime_error("no such file: " + path);
    }
  }
  const Bytes block_size = cfs_->config().block_size;
  std::vector<BlockId> written;
  size_t offset = 0;
  while (offset < data.size() || (data.empty() && written.empty())) {
    const size_t take = std::min(static_cast<size_t>(block_size),
                                 data.size() - offset);
    if (take == 0) break;
    std::vector<uint8_t> block(static_cast<size_t>(block_size), 0);
    std::copy_n(data.begin() + static_cast<ptrdiff_t>(offset), take,
                block.begin());
    const BlockId id = cfs_->write_block(block, writer);
    written.push_back(id);
    std::lock_guard<std::mutex> lock(mu_);
    FileMeta& meta = files_.at(path);
    meta.blocks.push_back(id);
    meta.lengths.push_back(static_cast<Bytes>(take));
    offset += take;
  }
  return written;
}

std::vector<uint8_t> FileSystem::read(const std::string& path,
                                      NodeId reader) {
  FileMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = files_.find(path);
    if (it == files_.end()) {
      throw std::runtime_error("no such file: " + path);
    }
    meta = it->second;
  }
  std::vector<uint8_t> out;
  for (size_t i = 0; i < meta.blocks.size(); ++i) {
    const datapath::BlockBuffer block =
        cfs_->read_block(meta.blocks[i], reader);
    const auto payload =
        block.window(0, static_cast<size_t>(meta.lengths[i]));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

bool FileSystem::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Bytes FileSystem::size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::runtime_error("no such file: " + path);
  }
  Bytes total = 0;
  for (const Bytes len : it->second.lengths) total += len;
  return total;
}

std::vector<BlockId> FileSystem::blocks(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::runtime_error("no such file: " + path);
  }
  return it->second.blocks;
}

std::vector<std::string> FileSystem::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, meta] : files_) {
    (void)meta;
    names.push_back(name);
  }
  return names;
}

void FileSystem::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    throw std::runtime_error("no such file: " + path);
  }
}

}  // namespace ear::cfs
