// Write-path (synchronous) erasure coding — MiniCfs::write_encoded_stripe.
//
// The client computes the n - k parity blocks locally and streams all n
// blocks straight to their final locations, skipping replication and the
// later encoding pass entirely.  Placement follows the same rack-level
// fault-tolerance rule as encoded stripes: n distinct nodes in n distinct
// racks (c = 1 semantics; requires R >= n).
#include <stdexcept>
#include <thread>

#include "cfs/minicfs.h"
#include "obs/trace.h"
#include "placement/replica_layout.h"
#include "qos/qos.h"

namespace ear::cfs {

StripeId MiniCfs::write_encoded_stripe(
    const std::vector<std::span<const uint8_t>>& data,
    std::optional<NodeId> writer) {
  obs::Span span("cfs.write_encoded_stripe", "cfs");
  qos::OpScope op(qos::TrafficClass::kForegroundWrite);
  const int k = codec_->k();
  const int n = codec_->n();
  const int m = codec_->m();
  if (static_cast<int>(data.size()) != k) {
    throw std::invalid_argument("write_encoded_stripe: need exactly k blocks");
  }
  for (const auto& block : data) {
    if (static_cast<Bytes>(block.size()) != config_.block_size) {
      throw std::invalid_argument("write_encoded_stripe: bad block size");
    }
  }
  if (topo_.rack_count() < n) {
    throw std::invalid_argument(
        "write_encoded_stripe: need at least n racks for c = 1 placement");
  }

  TransferScope in_flight(*this);

  // Compute parity at the writer.
  std::vector<datapath::MutableBlockBuffer> parity;
  parity.reserve(static_cast<size_t>(m));
  {
    std::vector<erasure::BlockView> dv(data.begin(), data.end());
    std::vector<erasure::MutBlockView> pv;
    pv.reserve(static_cast<size_t>(m));
    for (int j = 0; j < m; ++j) {
      parity.emplace_back(static_cast<size_t>(config_.block_size));
      pv.emplace_back(parity.back().span());
    }
    codec_->encode(dv, pv);
  }

  // Placement: n random distinct racks, one random node each.
  std::vector<NodeId> nodes;
  StripeId stripe;
  std::vector<BlockId> block_ids(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    const auto racks = rng_.sample_without_replacement(
        static_cast<size_t>(topo_.rack_count()), static_cast<size_t>(n));
    for (const size_t r : racks) {
      nodes.push_back(
          random_node_in_rack(topo_, static_cast<RackId>(r), rng_));
    }
  }
  stripe = next_inline_stripe_id_.fetch_sub(1, std::memory_order_relaxed);
  const BlockId id_base = next_block_id_.fetch_add(n, std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    block_ids[static_cast<size_t>(i)] = id_base + i;
  }

  // Stream all n blocks from the writer concurrently (the client pushes
  // each block to its node).
  const NodeId src = writer.value_or(kInvalidNode);
  {
    const qos::Captured qctx = qos::capture();
    std::vector<std::thread> pushes;
    for (int i = 0; i < n; ++i) {
      pushes.emplace_back([this, src, &nodes, i, qctx] {
        qos::InstallScope qscope(qctx);
        if (src != kInvalidNode) {
          transport_->transfer(src, nodes[static_cast<size_t>(i)],
                               config_.block_size);
        }
        // A remote (off-cluster) client's ingress is not modeled, matching
        // write_block's behaviour.
      });
    }
    for (auto& t : pushes) t.join();
  }
  for (int i = 0; i < k; ++i) {
    store(nodes[static_cast<size_t>(i)], block_ids[static_cast<size_t>(i)],
          datapath::BlockBuffer::copy_of(data[static_cast<size_t>(i)]));
  }
  for (int j = 0; j < m; ++j) {
    store(nodes[static_cast<size_t>(k + j)],
          block_ids[static_cast<size_t>(k + j)],
          std::move(parity[static_cast<size_t>(j)]).seal());
  }

  ns_.commit_inline_stripe(stripe, block_ids, nodes, k);
  return stripe;
}

}  // namespace ear::cfs
