// File namespace on top of MiniCfs block storage (the NameNode's namespace
// role in HDFS).  Files are append-only sequences of fixed-size blocks; the
// last block is zero-padded on disk and trimmed on read using the recorded
// logical size.
//
// Deleting a file only unlinks it from the namespace (HDFS-trash semantics):
// blocks that already joined an erasure-coded stripe must stay on disk to
// keep the stripe decodable, so physical reclamation is a separate,
// stripe-aware process out of scope here.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cfs/minicfs.h"

namespace ear::cfs {

class FileSystem {
 public:
  explicit FileSystem(MiniCfs& cfs) : cfs_(&cfs) {}

  // Creates an empty file.  Throws if it already exists.
  void create(const std::string& path);

  // Appends `data` to the file, splitting into blocks.  Returns the block
  // ids written.  Data smaller than a block is padded; appends always start
  // a fresh block (simplification: HDFS appends to partial blocks, but
  // HDFS-RAID only encodes full blocks anyway).
  std::vector<BlockId> append(const std::string& path,
                              std::span<const uint8_t> data,
                              std::optional<NodeId> writer = std::nullopt);

  // Reads the whole file to `reader` (degraded reads included).
  std::vector<uint8_t> read(const std::string& path, NodeId reader);

  bool exists(const std::string& path) const;
  Bytes size(const std::string& path) const;
  std::vector<BlockId> blocks(const std::string& path) const;
  std::vector<std::string> list() const;

  // Unlinks the file from the namespace (blocks remain on disk; see above).
  void remove(const std::string& path);

 private:
  struct FileMeta {
    std::vector<BlockId> blocks;
    // Logical byte length of each block (== block_size except possibly the
    // last block of each append).
    std::vector<Bytes> lengths;
  };

  MiniCfs* cfs_;
  mutable std::mutex mu_;
  std::map<std::string, FileMeta> files_;
};

}  // namespace ear::cfs
