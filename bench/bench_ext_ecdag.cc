// Extension bench: distributed encode/repair DAGs (src/ecdag/).
//
// The legacy conversion funnels all k data blocks through the encoder node,
// so its rack down-link carries ~k blocks per stripe across the core switch
// no matter how good placement is.  With --ecdag the encode runs as a
// rack-aware partial-sum tree: each remote rack XOR-combines its coeff x
// block terms locally and ships one combined chunk per parity across the
// core.  Repair and degraded reads lower the same way (one partial per
// source rack instead of one chunk per source block).
//
// Sections:
//   A. encode core-switch bytes per stripe, legacy vs ecdag, with parity
//      byte-identity verified block for block (the bench exits 1 on any
//      mismatch — aggregation must not change a single byte);
//   B. repair cross-rack bytes after a DataNode loss, legacy vs ecdag;
//   C. wall-clock conversion throughput under a 4x oversubscribed core
//      (rack up-links at node_bw * nodes_per_rack / oversub), legacy vs
//      ecdag on the throttled transport;
//   D. the discrete-event simulator's encode cross-bytes for the same
//      topologies, cross-checking the testbed ratios at cluster scale.
//
// Scattered (RR) layouts with several blocks per rack are where aggregation
// pays; EAR's core-rack layouts already localize the download, so the rows
// marked "ear" double as a no-regression check (the DAG must degenerate to
// the legacy transfer pattern, not make things worse).
//
//   ./bench_ext_ecdag                  # full sweep
//   ./bench_ext_ecdag --smoke          # tiny run for sanitizer CI
//   ./bench_ext_ecdag --csv-out x.csv  # machine-readable rows
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/testbed_util.h"
#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/csv.h"
#include "common/flags.h"
#include "sim/cluster.h"

namespace {

using namespace ear;
using Clock = std::chrono::steady_clock;

struct Config {
  const char* name;
  int racks;
  int nodes_per_rack;
  int n;
  int k;
  bool use_ear;
};

// Favorable (many blocks per rack, few parities), marginal, the paper's
// 12-rack testbed (1 block per rack: no aggregation possible), and an EAR
// no-regression row.
const Config kConfigs[] = {
    {"rr-16+1-r4", 4, 5, 17, 16, false},
    {"rr-12+2-r4", 4, 4, 14, 12, false},
    {"rr-8+2-r12", 12, 1, 10, 8, false},
    {"ear-8+2-r12", 12, 1, 10, 8, true},  // EAR needs racks * c >= n
};

ear::bench::TestbedParams params_for(const Config& cfg,
                                     const ear::bench::TestbedParams& base,
                                     bool ecdag) {
  ear::bench::TestbedParams p = base;
  p.racks = cfg.racks;
  p.nodes_per_rack = cfg.nodes_per_rack;
  p.n = cfg.n;
  p.k = cfg.k;
  p.ecdag = ecdag;
  p.distinct_payloads = true;  // parity identity must not hide behind XOR
  return p;
}

struct EncodeRun {
  int64_t cross_per_stripe = 0;
  int64_t intra_per_stripe = 0;
  std::unique_ptr<cfs::MiniCfs> cfs;
  std::vector<StripeId> stripes;
};

// Encodes every stripe on an instant (but chunked) transport and returns
// the per-stripe core-switch byte count plus the cluster for inspection.
EncodeRun run_encode(const ear::bench::TestbedParams& p, bool use_ear) {
  auto testbed = ear::bench::make_loaded_testbed(p, use_ear);
  cfs::MiniCfs& cfs = *testbed.cfs;
  cfs.set_transport(std::make_unique<cfs::InstantTransport>(
      cfs.topology(), /*preferred_chunk=*/64_KB));
  for (const StripeId s : testbed.stripes) cfs.encode_stripe(s);
  EncodeRun r;
  const auto stripes = static_cast<int64_t>(testbed.stripes.size());
  r.cross_per_stripe = cfs.transport().cross_rack_bytes() / stripes;
  r.intra_per_stripe = cfs.transport().intra_rack_bytes() / stripes;
  r.cfs = std::move(testbed.cfs);
  r.stripes = std::move(testbed.stripes);
  return r;
}

// Byte-compares every parity block of the two clusters.  They were fed
// identical writes with the same seed, so stripe layouts and parity ids
// match; only the data path differed.
bool parity_identical(cfs::MiniCfs& a, cfs::MiniCfs& b,
                      const std::vector<StripeId>& stripes) {
  for (const StripeId s : stripes) {
    const auto ma = a.stripe_meta(s);
    const auto mb = b.stripe_meta(s);
    if (ma.parity_blocks != mb.parity_blocks) return false;
    for (const BlockId p : ma.parity_blocks) {
      const NodeId holder = a.block_locations(p)[0];
      if (a.read_block(p, holder) != b.read_block(p, holder)) return false;
    }
  }
  return true;
}

struct RepairStats {
  int64_t repairs = 0;
  int64_t cross_bytes = 0;
};

// Kills one DataNode and repairs every encoded block it solely held,
// counting the core-switch bytes the reconstructions moved.  Stripes the
// loss pushed below k live blocks are genuinely unrecoverable (RR placement
// can put two blocks of an m=1 stripe on one node) and are skipped — both
// clusters saw identical writes, so both skip the same stripes.
RepairStats run_repair(cfs::MiniCfs& cfs, int max_repairs) {
  const NodeId victim = 0;
  cfs.kill_node(victim);
  const cfs::NamespaceSnapshot ns = cfs.namespace_snapshot();
  const auto block_live = [&](BlockId b) {
    for (const NodeId n : ns.blocks.at(b).locations) {
      if (cfs.node_alive(n)) return true;
    }
    return false;
  };
  const auto stripe_recoverable = [&](StripeId s) {
    const cfs::StripeMeta& m = ns.stripes.at(s);
    int live = 0;
    for (const BlockId b : m.data_blocks) live += block_live(b);
    for (const BlockId b : m.parity_blocks) live += block_live(b);
    return live >= static_cast<int>(m.data_blocks.size());
  };
  std::vector<BlockId> lost;
  for (const BlockId b : cfs.all_blocks()) {
    const cfs::BlockStatus& st = ns.blocks.at(b);
    if (block_live(b)) continue;
    if (st.stripe == kInvalidStripe || !stripe_recoverable(st.stripe)) {
      continue;
    }
    lost.push_back(b);
    if (static_cast<int>(lost.size()) >= max_repairs) break;
  }
  RepairStats r;
  const int64_t cross0 = cfs.transport().cross_rack_bytes();
  NodeId target = cfs.topology().node_count() - 1;
  for (const BlockId b : lost) {
    cfs.repair_block(b, target);
    ++r.repairs;
  }
  r.cross_bytes = cfs.transport().cross_rack_bytes() - cross0;
  return r;
}

// Wall-clock conversion under an oversubscribed core: rack up-links carry
// nodes_per_rack / oversub node-links' worth of bandwidth, so raw k-block
// fan-ins contend exactly where the DAG sheds traffic.
double run_throughput(const ear::bench::TestbedParams& base, const Config& cfg,
                      bool ecdag, double oversub, int map_slots) {
  ear::bench::TestbedParams p = params_for(cfg, base, ecdag);
  p.throttle.rack_uplink_bw =
      p.throttle.node_bw * cfg.nodes_per_rack / oversub;
  auto testbed = ear::bench::make_loaded_testbed(p, cfg.use_ear);
  cfs::MiniCfs& cfs = *testbed.cfs;
  cfs::RaidNode raid(cfs, map_slots);
  const auto t0 = Clock::now();
  raid.encode_stripes(testbed.stripes);
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const double encoded_mb = static_cast<double>(testbed.stripes.size()) *
                            static_cast<double>(p.k) *
                            static_cast<double>(p.block_size) / 1e6;
  return secs > 0 ? encoded_mb / secs : 0;
}

int64_t run_sim_cross(const Config& cfg, Bytes block, int stripes_per_proc,
                      bool ecdag) {
  sim::SimConfig sc;
  sc.racks = cfg.racks;
  sc.nodes_per_rack = std::max(cfg.nodes_per_rack, 2);
  sc.placement.code = CodeParams{cfg.n, cfg.k};
  sc.placement.replication = 2;
  sc.placement.c = 1;
  sc.use_ear = cfg.use_ear;
  sc.block_size = block;
  sc.write_rate = 0;
  sc.background_rate = 0;
  sc.encode_start = 0.0;
  sc.encode_processes = 2;
  sc.stripes_per_process = stripes_per_proc;
  sc.ecdag_enable = ecdag;
  sc.seed = 9;
  sim::ClusterSim sim(sc);
  return sim.run().cross_rack_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.get_bool("smoke");
  ear::bench::TestbedParams base = ear::bench::TestbedParams::from_flags(flags);
  if (smoke) {
    base.stripes = 2;
    base.block_size = std::min<Bytes>(base.block_size, 128_KB);
    base.throttle.chunk_size = 32_KB;
  }
  const double oversub = flags.get_double("oversub", 4.0);
  const int map_slots = static_cast<int>(flags.get_int("map-slots", 4));
  const int max_repairs =
      static_cast<int>(flags.get_int("repairs", smoke ? 2 : 8));
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  csv.row("section,config,racks,nodes_per_rack,n,k,placement,"
          "legacy,ecdag,unit\n");

  ear::bench::header(
      "EXT-ECDAG", "distributed encode/repair DAGs vs single-node fan-in");

  // ---- A: encode core-switch bytes + parity byte-identity ----------------
  ear::bench::row("%-14s %22s %22s %8s", "A: encode", "legacy cross/stripe",
                  "ecdag cross/stripe", "ratio");
  for (const Config& cfg : kConfigs) {
    EncodeRun legacy = run_encode(params_for(cfg, base, false), cfg.use_ear);
    EncodeRun dist = run_encode(params_for(cfg, base, true), cfg.use_ear);
    if (!parity_identical(*legacy.cfs, *dist.cfs, legacy.stripes)) {
      std::fprintf(stderr, "FATAL: %s parity bytes differ with --ecdag\n",
                   cfg.name);
      return 1;
    }
    const double ratio =
        dist.cross_per_stripe > 0
            ? static_cast<double>(legacy.cross_per_stripe) /
                  static_cast<double>(dist.cross_per_stripe)
            : 0;
    ear::bench::row("%-14s %19.2f MB %19.2f MB %7.2fx", cfg.name,
                    static_cast<double>(legacy.cross_per_stripe) / 1e6,
                    static_cast<double>(dist.cross_per_stripe) / 1e6, ratio);
    csv.row("encode,%s,%d,%d,%d,%d,%s,%lld,%lld,cross_bytes_per_stripe\n",
            cfg.name, cfg.racks, cfg.nodes_per_rack, cfg.n, cfg.k,
            cfg.use_ear ? "ear" : "rr",
            static_cast<long long>(legacy.cross_per_stripe),
            static_cast<long long>(dist.cross_per_stripe));

    // ---- B: repair cross-rack bytes on the same clusters -----------------
    const RepairStats rl = run_repair(*legacy.cfs, max_repairs);
    const RepairStats rd = run_repair(*dist.cfs, max_repairs);
    if (rl.repairs > 0) {
      ear::bench::row("%-14s %19.2f MB %19.2f MB   (B: repair x%lld)",
                      cfg.name,
                      static_cast<double>(rl.cross_bytes) / 1e6,
                      static_cast<double>(rd.cross_bytes) / 1e6,
                      static_cast<long long>(rl.repairs));
      csv.row("repair,%s,%d,%d,%d,%d,%s,%lld,%lld,cross_bytes_total\n",
              cfg.name, cfg.racks, cfg.nodes_per_rack, cfg.n, cfg.k,
              cfg.use_ear ? "ear" : "rr",
              static_cast<long long>(rl.cross_bytes),
              static_cast<long long>(rd.cross_bytes));
    }
  }
  ear::bench::note(
      "parity byte-identity verified block-for-block on every config");

  // ---- C: conversion throughput under an oversubscribed core ------------
  ear::bench::row("%-14s %16s %16s %8s",
                  "C: throughput", "legacy MB/s", "ecdag MB/s", "gain");
  for (const Config& cfg : kConfigs) {
    if (smoke && !(cfg.racks == 4 && cfg.k == 12 && !cfg.use_ear)) continue;
    const double legacy =
        run_throughput(base, cfg, false, oversub, map_slots);
    const double dist = run_throughput(base, cfg, true, oversub, map_slots);
    ear::bench::row("%-14s %16.1f %16.1f %7.2fx", cfg.name, legacy, dist,
                    legacy > 0 ? dist / legacy : 0);
    csv.row("throughput,%s,%d,%d,%d,%d,%s,%.2f,%.2f,mb_per_s\n", cfg.name,
            cfg.racks, cfg.nodes_per_rack, cfg.n, cfg.k,
            cfg.use_ear ? "ear" : "rr", legacy, dist);
  }
  ear::bench::note("core oversubscription " + std::to_string(oversub) +
                   "x: rack up-links at node_bw * nodes_per_rack / oversub");

  // ---- D: simulator cross-check ------------------------------------------
  const Bytes sim_block = smoke ? Bytes{1_MB} : Bytes{16_MB};
  const int sim_stripes = smoke ? 2 : 10;
  ear::bench::row("%-14s %22s %22s %8s", "D: simulator", "legacy cross MB",
                  "ecdag cross MB", "ratio");
  for (const Config& cfg : kConfigs) {
    if (cfg.use_ear) continue;  // sim row set mirrors the RR testbed rows
    const int64_t off = run_sim_cross(cfg, sim_block, sim_stripes, false);
    const int64_t on = run_sim_cross(cfg, sim_block, sim_stripes, true);
    ear::bench::row("%-14s %19.1f MB %19.1f MB %7.2fx", cfg.name,
                    static_cast<double>(off) / 1e6,
                    static_cast<double>(on) / 1e6,
                    on > 0 ? static_cast<double>(off) / static_cast<double>(on)
                           : 0);
    csv.row("sim,%s,%d,%d,%d,%d,rr,%lld,%lld,cross_bytes_total\n", cfg.name,
            cfg.racks, cfg.nodes_per_rack, cfg.n, cfg.k,
            static_cast<long long>(off), static_cast<long long>(on));
  }
  ear::bench::note(
      "expectation: >= 2x fewer core-link bytes on scattered multi-node "
      "racks; parity byte-identical; 1-node racks and EAR layouts unchanged");

  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
