// Extension experiment: cluster-wide QoS — weighted fair-share link
// scheduling with multi-tenant traffic classes (qos/scheduler.h).
//
// Part 1 — weighted-share convergence.  Two tenants with 3:1 weights
// saturate the same receiver link through a raw ThrottledTransport; their
// delivered goodput must converge to the configured ratio (acceptance:
// within +/-10%).
//
// Part 2 — multi-tenant mix, FIFO vs QoS.  Hot-Zipf readers (two tenants),
// a Poisson writer, a live node failure with budgeted repair, and a
// background conversion job (RaidNode encode) all run concurrently; per
// (tenant, class) latency tables (p50/p99/p999) and goodput are reported for
// both disciplines.  The paper-style claim: foreground read p99 under QoS is
// >= 2x lower than FIFO while repair finishes in comparable time (the repair
// budget — the RepairManager's old private token bucket — is enforced as the
// kRepair class rate in the QoS run).
//
// Part 3 — byte identity.  A deterministic single-threaded
// encode / kill / repair / read sequence is executed twice, QoS off and on,
// and every payload (stored blocks including parity, plus every read result)
// is CRC-checked: scheduling may change *when* bytes move, never *which*
// bytes (DESIGN.md invariant 11).  This is the bench's exit-code gate.
//
//   ./bench_ext_qos                     # full run
//   ./bench_ext_qos --smoke            # CI-sized (ASan job)
//   ./bench_ext_qos --csv-out qos.csv  # machine-readable latency tables
//   ./bench_ext_qos --metrics-out m.json  # qos.class.* counters, gauges
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "bench/testbed_util.h"
#include "cfs/raidnode.h"
#include "cfs/workload.h"
#include "common/crc32.h"
#include "common/csv.h"
#include "common/stats.h"
#include "failure/repair.h"
#include "qos/qos.h"

namespace {

using namespace ear;
using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

// ---- Part 1 ---------------------------------------------------------------

struct ShareOutcome {
  double mbps[2] = {0, 0};  // tenant 1, tenant 2
  double ratio = 0;
};

ShareOutcome run_weighted_share(double window_s) {
  // Three racks, one node each: tenants 1 and 2 push from nodes 0 and 1
  // into node 2, so the receiver-side links are the shared bottleneck.
  const Topology topo(3, 1);
  cfs::ThrottleConfig tcfg;
  tcfg.node_bw = 20e6;
  tcfg.rack_uplink_bw = 20e6;
  tcfg.chunk_size = 64_KB;
  tcfg.qos.enable = true;
  tcfg.qos.tenant_weight[1] = 3.0;
  tcfg.qos.tenant_weight[2] = 1.0;
  cfs::ThrottledTransport transport(topo, tcfg);

  // Several synchronous pushers per tenant keep each flow backlogged at the
  // receiver — WFQ differentiates flows only while both have queued work (a
  // single closed-loop pusher degenerates to alternation, i.e. 1:1).
  constexpr int kPushersPerTenant = 4;
  std::atomic<bool> running{true};
  std::atomic<int64_t> bytes[2] = {0, 0};
  std::vector<std::thread> pushers;
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < kPushersPerTenant; ++i) {
      pushers.emplace_back([&, t] {
        qos::QosScope scope(qos::TrafficClass::kForegroundRead, t + 1);
        const Bytes burst = 64_KB;
        int64_t moved = 0;
        while (running.load(std::memory_order_relaxed)) {
          transport.transfer(static_cast<NodeId>(t), 2, burst);
          moved += burst;
        }
        bytes[t].fetch_add(moved, std::memory_order_relaxed);
      });
    }
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
  running.store(false);
  for (auto& p : pushers) p.join();

  ShareOutcome out;
  const int64_t b0 = bytes[0].load();
  const int64_t b1 = bytes[1].load();
  out.mbps[0] = static_cast<double>(b0) / 1e6 / window_s;
  out.mbps[1] = static_cast<double>(b1) / 1e6 / window_s;
  out.ratio = b1 > 0 ? static_cast<double>(b0) / static_cast<double>(b1) : 0.0;
  return out;
}

// ---- Part 2 ---------------------------------------------------------------

struct MixParams {
  int stripes = 96;
  int pre_encoded = 16;    // stripes converted before the window (mixed ns)
  int encode_slots = 10;   // conversion parallelism (keeps links contended)
  double window_floor_s = 3.0;
  double write_rate = 3.0;
  int readers_per_tenant = 3;
  BytesPerSec repair_budget = 6e6;
};

struct MixOutcome {
  LatencyPercentiles read_pct[2];  // per tenant, seconds (loaded phase only)
  double read_mbps[2] = {0, 0};    // goodput over the loaded phase
  LatencyPercentiles write_pct;
  double encode_s = 0;
  double repair_s = 0;
  int64_t repair_bytes = 0;
  double loaded_s = 0;  // background work (encode + repair) still active
  double window_s = 0;
  int read_failures = 0;
};

// Zipf(alpha = 1) sampler over `n` items via the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double acc = 0;
    for (size_t i = 1; i <= n; ++i) {
      acc += 1.0 / static_cast<double>(i);
      cdf_.push_back(acc);
    }
    total_ = acc;
  }
  size_t next() {
    const double u = rng_.uniform_double() * total_;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
  double total_ = 0;
};

MixOutcome run_mix(bool qos_on, const MixParams& mp) {
  bench::TestbedParams p;
  // Oversubscribed ToR links (2 nodes behind a rack link of node speed):
  // the shared rack up/down links are where FIFO queues actually build
  // under load and where fair queuing has bandwidth to re-divide.
  p.racks = 6;
  p.nodes_per_rack = 2;
  p.k = 4;
  p.n = 6;
  p.replication = 2;
  p.stripes = mp.stripes;
  p.block_size = 256_KB;
  p.throttle.node_bw = 8e6;
  p.throttle.rack_uplink_bw = 8e6;
  p.throttle.chunk_size = 128_KB;
  p.throttle.qos.enable = qos_on;
  p.throttle.qos.tenant_weight[1] = 3.0;
  p.throttle.qos.tenant_weight[2] = 1.0;
  p.throttle.qos.class_rate[static_cast<int>(qos::TrafficClass::kRepair)] =
      mp.repair_budget;
  // Aggressive-recovery posture: repair gets twice the background weight so
  // its fair share reaches the byte budget even under foreground pressure —
  // that is what keeps QoS repair completion comparable to FIFO's.
  p.throttle.qos.class_weight[static_cast<int>(qos::TrafficClass::kRepair)] =
      2.0;
  p.seed = 11;

  auto testbed = bench::make_loaded_testbed(p, /*use_ear=*/true);
  cfs::MiniCfs& cfs = *testbed.cfs;

  // Background conversion starts from a mixed namespace: the first
  // `pre_encoded` stripes were converted before the measured window.
  {
    auto instant =
        std::make_unique<cfs::InstantTransport>(cfs.topology());
    auto throttled = std::make_unique<cfs::ThrottledTransport>(
        cfs.topology(), p.throttle);
    cfs.set_transport(std::move(instant));
    for (int i = 0; i < mp.pre_encoded; ++i) {
      cfs.encode_stripe(testbed.stripes[static_cast<size_t>(i)]);
    }
    cfs.set_transport(std::move(throttled));
  }

  const std::vector<BlockId> blocks = cfs.all_blocks();

  MixOutcome out;
  const auto t0 = SteadyClock::now();
  std::atomic<bool> running{true};
  // Tail percentiles are the under-load comparison (the acceptance claim is
  // "p99 under repair + encode load"), so readers record samples only while
  // the background work is still active; the post-load floor keeps threads
  // alive for teardown symmetry but adds no samples.
  std::atomic<bool> loaded{true};

  // Foreground readers: hot-Zipf popularity, one flow per tenant.
  std::vector<double> read_lat[2];
  std::atomic<int64_t> read_bytes[2] = {0, 0};
  std::atomic<int> read_failures{0};
  std::mutex lat_mu;
  std::vector<std::thread> readers;
  for (int tenant = 1; tenant <= 2; ++tenant) {
    for (int r = 0; r < mp.readers_per_tenant; ++r) {
      readers.emplace_back([&, tenant, r] {
        qos::QosScope scope(qos::TrafficClass::kForegroundRead, tenant);
        ZipfSampler zipf(blocks.size(),
                         0xbeefULL + static_cast<uint64_t>(tenant * 8 + r));
        Rng node_rng(0xfeedULL + static_cast<uint64_t>(tenant * 8 + r));
        std::vector<double> local;
        int64_t local_bytes = 0;
        while (running.load(std::memory_order_relaxed)) {
          const BlockId b = blocks[zipf.next()];
          const NodeId reader = static_cast<NodeId>(node_rng.uniform(
              static_cast<uint64_t>(cfs.topology().node_count())));
          const bool counted = loaded.load(std::memory_order_relaxed);
          const auto s = SteadyClock::now();
          try {
            const auto sz =
                static_cast<int64_t>(cfs.read_block(b, reader).size());
            if (counted) {
              local_bytes += sz;
              local.push_back(seconds_since(s));
            }
          } catch (const std::runtime_error&) {
            read_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        read_bytes[tenant - 1].fetch_add(local_bytes,
                                         std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(lat_mu);
        auto& sink = read_lat[tenant - 1];
        sink.insert(sink.end(), local.begin(), local.end());
      });
    }
  }

  // Foreground writer: tenant 2's ingest stream.
  cfs::WriteWorkload writes(cfs, mp.write_rate, /*seed=*/21);
  writes.set_qos({qos::TrafficClass::kForegroundWrite, 2});
  writes.start();

  // Live repair: a node dies as the window opens; the budgeted repair
  // service races the foreground traffic.  Under QoS the budget is the
  // kRepair class rate; under FIFO it is the manager's own token bucket
  // (same bytes/s either way).
  failure::RepairConfig rcfg;
  rcfg.workers = 1;
  rcfg.repair_bandwidth = mp.repair_budget;
  failure::RepairManager repair(cfs, rcfg);
  const NodeId victim = 3;
  cfs.kill_node(victim);
  const auto repair_t0 = SteadyClock::now();
  repair.start();
  repair.schedule_node(victim);

  // Background conversion: the system tenant encodes the remaining stripes.
  // Several map slots keep the links genuinely contended — that contention
  // is what FIFO turns into foreground tail latency and QoS does not.
  cfs::RaidNode raid(cfs, mp.encode_slots);
  std::vector<StripeId> to_encode(
      testbed.stripes.begin() + mp.pre_encoded, testbed.stripes.end());
  cfs::EncodeReport encode_report;
  std::thread encoder([&] {
    encode_report = raid.encode_stripes(to_encode);
  });

  encoder.join();
  out.encode_s = encode_report.duration_s;
  repair.wait_idle();
  out.repair_s = seconds_since(repair_t0);
  loaded.store(false);
  out.loaded_s = seconds_since(t0);
  // Keep the mix contended for the window floor even if the background work
  // finished early (smoke runs), so tail percentiles have samples.
  while (seconds_since(t0) < mp.window_floor_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  running.store(false);
  for (auto& r : readers) r.join();
  writes.stop();
  repair.stop();

  out.window_s = seconds_since(t0);
  for (int t = 0; t < 2; ++t) {
    out.read_pct[t] = LatencyPercentiles::from(std::move(read_lat[t]));
    out.read_mbps[t] =
        static_cast<double>(read_bytes[t].load()) / 1e6 / out.loaded_s;
  }
  std::vector<double> wlat;
  for (const auto& [issue, resp] : writes.samples()) wlat.push_back(resp);
  out.write_pct = LatencyPercentiles::from(std::move(wlat));
  out.repair_bytes = repair.report().bytes_moved;
  out.read_failures = read_failures.load();
  return out;
}

// ---- Part 3 ---------------------------------------------------------------

// Runs the deterministic conversion/failure/read sequence and digests every
// payload the cluster ends up holding or serving.  Single-threaded, fixed
// seed: with QoS off and on the sequence consumes the MiniCfs RNG
// identically, so any digest difference is a real payload divergence.
uint32_t run_byte_identity(bool qos_on) {
  bench::TestbedParams p;
  p.racks = 8;
  p.nodes_per_rack = 1;
  p.k = 4;
  p.n = 6;
  p.replication = 2;
  p.stripes = 4;
  p.block_size = 64_KB;
  p.distinct_payloads = true;  // XOR cancellations must not mask anything
  p.throttle.node_bw = 50e6;
  p.throttle.rack_uplink_bw = 50e6;
  p.throttle.chunk_size = 16_KB;
  p.throttle.qos.enable = qos_on;
  p.throttle.qos.tenant_weight[1] = 3.0;
  p.seed = 5;

  auto testbed = bench::make_loaded_testbed(p, /*use_ear=*/true);
  cfs::MiniCfs& cfs = *testbed.cfs;

  for (const StripeId s : testbed.stripes) cfs.encode_stripe(s);
  cfs.kill_node(2);
  cfs.restore_redundancy();

  uint32_t digest = 0;
  // Every read payload (replica reads and degraded reads alike)...
  qos::QosScope scope(qos::TrafficClass::kForegroundRead, 1);
  for (const BlockId b : cfs.all_blocks()) {
    const auto buf = cfs.read_block(b, /*reader=*/1);
    digest = crc32(buf.span(), digest);
  }
  // ...and every stored block, parity included (export copies metadata
  // only; no transport involved).
  const cfs::ClusterImage image = cfs.export_image();
  for (const auto& node : image.node_blocks) {
    for (const auto& [block, buf] : node) {
      digest = crc32(buf.span(), digest);
    }
  }
  return digest;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const bench::ObsOutputs obs_out = bench::obs_from_flags(flags);
  // The qos.class.* instruments are part of this bench's report: collect
  // them even when no --metrics-out was requested (trace setting is kept).
  {
    obs::Config ocfg = obs::config();
    ocfg.metrics = true;
    obs::init(ocfg);
  }
  const bool smoke = flags.get_bool("smoke");
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row(
        "part,mode,flow,count,mean_s,p50_s,p90_s,p99_s,p999_s,goodput_mbps\n");
  }

  // ---- Part 1: weighted shares -------------------------------------------
  bench::header("Extension: QoS weighted shares",
                "two tenants, 3:1 weights, one saturated receiver link");
  const double share_window = flags.get_double("share-window", smoke ? 1.0 : 3.0);
  const ShareOutcome share = run_weighted_share(share_window);
  const bool share_ok = share.ratio > 3.0 * 0.9 && share.ratio < 3.0 * 1.1;
  bench::row("  tenant 1 (w=3)  %7.2f MB/s", share.mbps[0]);
  bench::row("  tenant 2 (w=1)  %7.2f MB/s", share.mbps[1]);
  bench::row("  ratio           %7.2f (target 3.00 +/-10%%) %s", share.ratio,
             share_ok ? "(PASS)" : "(FAIL)");
  if (!csv_path.empty()) {
    csv.row("share,qos,tenant1,0,0,0,0,0,0,%.3f\n", share.mbps[0]);
    csv.row("share,qos,tenant2,0,0,0,0,0,0,%.3f\n", share.mbps[1]);
  }

  // ---- Part 2: multi-tenant mix, FIFO vs QoS ------------------------------
  bench::header("Extension: QoS multi-tenant mix",
                "Zipf readers + writer + budgeted repair + conversion");
  MixParams mp;
  if (smoke) {
    mp.stripes = 10;
    mp.pre_encoded = 4;
    mp.encode_slots = 3;
    mp.window_floor_s = 1.2;
    mp.readers_per_tenant = 1;
  }
  MixOutcome mix[2];
  for (const bool qos_on : {false, true}) {
    mix[qos_on ? 1 : 0] = run_mix(qos_on, mp);
    const MixOutcome& m = mix[qos_on ? 1 : 0];
    const char* mode = qos_on ? "QoS" : "FIFO";
    bench::row("%-4s loaded %.2f s | encode %.2f s | repair %.2f s "
               "(%lld bytes) | read errors %d",
               mode, m.loaded_s, m.encode_s, m.repair_s,
               static_cast<long long>(m.repair_bytes), m.read_failures);
    bench::row("  fg-read t1 (w=3): %s  %6.2f MB/s",
               m.read_pct[0].format().c_str(), m.read_mbps[0]);
    bench::row("  fg-read t2 (w=1): %s  %6.2f MB/s",
               m.read_pct[1].format().c_str(), m.read_mbps[1]);
    bench::row("  fg-write t2:      %s", m.write_pct.format().c_str());
    if (!csv_path.empty()) {
      const auto emit = [&](const char* flow, const LatencyPercentiles& lp,
                            double mbps) {
        csv.row("mix,%s,%s,%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%.3f\n", mode, flow,
                lp.count, lp.mean, lp.p50, lp.p90, lp.p99, lp.p999, mbps);
      };
      emit("fg-read-t1", m.read_pct[0], m.read_mbps[0]);
      emit("fg-read-t2", m.read_pct[1], m.read_mbps[1]);
      emit("fg-write-t2", m.write_pct, 0.0);
    }
  }
  const double p99_fifo = mix[0].read_pct[0].p99;
  const double p99_qos = mix[1].read_pct[0].p99;
  if (p99_qos > 0) {
    bench::row("  fg-read t1 p99: FIFO %.4f s vs QoS %.4f s -> %.2fx lower",
               p99_fifo, p99_qos, p99_fifo / p99_qos);
    bench::note(p99_fifo >= 2.0 * p99_qos
                    ? "foreground p99 >= 2x lower under QoS (PASS)"
                    : "foreground p99 improvement below 2x on this host");
  }
  bench::note("repair completes under its byte budget in both modes; QoS "
              "enforces it as the kRepair class rate");

  // qos.class.* byte counters from the QoS run (registry instruments are
  // process-wide; the FIFO run adds nothing to them).
  for (int c = 0; c < qos::kClassCount; ++c) {
    const auto cls = static_cast<qos::TrafficClass>(c);
    bench::row("  %-30s %12lld",
               qos::class_metric(cls, "bytes").c_str(),
               static_cast<long long>(
                   obs::Registry::instance()
                       .counter(qos::class_metric(cls, "bytes"))
                       .value()));
  }

  // ---- Part 3: byte identity ----------------------------------------------
  bench::header("Extension: QoS byte identity",
                "deterministic encode/kill/repair/read, QoS off vs on");
  const uint32_t digest_off = run_byte_identity(false);
  const uint32_t digest_on = run_byte_identity(true);
  const bool bytes_ok = digest_off == digest_on;
  bench::row("  payload digest: off=%08x on=%08x %s", digest_off, digest_on,
             bytes_ok ? "(PASS)" : "(FAIL)");
  bench::note("invariant 11: scheduling changes when bytes move, never "
              "which bytes");

  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  const int obs_rc = bench::obs_export(obs_out);
  if (!bytes_ok) return 1;
  // The share ratio is a real-time measurement; only the full-size run is
  // held to the +/-10% acceptance band.
  if (!smoke && !share_ok) return 1;
  return obs_rc;
}
