// Figure 12 + Table I, Experiment B.1: simulator validation.  Runs the same
// scenario — 12 single-node racks, (10,8), 2-way replication, Poisson write
// stream, encoding of a fixed batch of stripes — on BOTH the real-time
// MiniCfs testbed (real bytes, real RS coding, emulated links) and the
// discrete-event simulator, then compares (a) the cumulative
// stripes-encoded-vs-time curves and (b) average write response times with
// and without background encoding.
//
// Paper expectation: the simulator tracks the testbed closely (response-time
// differences under ~5%).
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "bench/testbed_util.h"
#include "cfs/workload.h"
#include "erasure/rs.h"
#include "sim/cluster.h"
#include "sim/metrics.h"

namespace {

struct Outcome {
  std::vector<double> completion_times;  // seconds since encode start
  double write_before = 0;
  double write_during = 0;
  double encode_duration = 0;
};

// Measures the real Reed-Solomon compute time of one (n,k) stripe at the
// given block size, so the simulator can charge the same per-stripe delay
// the testbed pays.
double measure_stripe_compute_seconds(int n, int k, ear::Bytes block) {
  using namespace ear;
  const erasure::RSCode code(n, k);
  Rng rng(123);
  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < k; ++i) {
    std::vector<uint8_t> b(static_cast<size_t>(block));
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.uniform(256));
    data.push_back(std::move(b));
  }
  parity.assign(static_cast<size_t>(n - k),
                std::vector<uint8_t>(static_cast<size_t>(block)));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
  const auto start = std::chrono::steady_clock::now();
  constexpr int kReps = 3;
  for (int i = 0; i < kReps; ++i) code.encode(dv, pv);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() /
         kReps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const double write_rate = flags.get_double("write-rate", 3.0);
  const double warmup_s = flags.get_double("warmup", 2.0);
  const Bytes block = static_cast<Bytes>(flags.get_int("block-bytes", 1_MB));
  const double bw = flags.get_double("node-bw", 10e6);
  const int stripes = static_cast<int>(flags.get_int("stripes", 24));
  // --csv-out=<prefix> writes <prefix>_{rr,ear}_{stripes,responses}.csv from
  // the simulator runs for external plotting.
  const std::string csv_prefix = flags.get_string("csv-out");
  int rc = 0;

  bench::header("Figure 12 / Table I",
                "simulator validation against the MiniCfs testbed");

  const double compute_s = measure_stripe_compute_seconds(10, 8, block);
  bench::row("measured per-stripe RS compute: %.4f s (charged to the sim)",
             compute_s);

  for (const bool use_ear : {false, true}) {
    // ---------------- testbed run ----------------
    Outcome testbed;
    {
      auto params = bench::TestbedParams::from_flags(flags);
      params.block_size = block;
      params.stripes = stripes;
      params.throttle.node_bw = bw;
      params.throttle.rack_uplink_bw = bw;
      params.throttle.disk_bw = 1.3 * bw;  // SATA : 1 Gb/s ratio
      auto loaded = bench::make_loaded_testbed(params, use_ear);

      cfs::WriteWorkload writes(*loaded.cfs, write_rate, 7);
      writes.start();
      std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
      cfs::RaidNode raid(*loaded.cfs, 12);
      const cfs::EncodeReport report = raid.encode_stripes(loaded.stripes);
      writes.stop();

      testbed.completion_times = report.completion_times;
      testbed.encode_duration = report.duration_s;
      Summary before, during;
      for (const auto& [issue, response] : writes.samples()) {
        (issue < warmup_s ? before : during).add(response);
      }
      testbed.write_before = before.empty() ? 0 : before.mean();
      testbed.write_during = during.empty() ? 0 : during.mean();
    }

    // ---------------- simulator run ----------------
    Outcome simulated;
    {
      sim::SimConfig cfg;
      cfg.racks = 12;
      cfg.nodes_per_rack = 1;
      cfg.net.node_bw = bw;
      cfg.net.rack_uplink_bw = bw;
      // Match the testbed's queueing discipline, disk model and real coding
      // cost.
      cfg.net.sharing = sim::SharingModel::kFifoReservation;
      cfg.net.disk_bw = 1.3 * bw;
      cfg.encode_compute_seconds = compute_s;
      cfg.placement.code = CodeParams{10, 8};
      cfg.placement.replication = 2;
      cfg.placement.c = 1;
      cfg.use_ear = use_ear;
      cfg.block_size = block;
      cfg.write_rate = write_rate;
      cfg.background_rate = 0;
      cfg.encode_start = warmup_s;
      cfg.encode_processes = 12;
      cfg.stripes_per_process = stripes / 12;
      cfg.seed = 7;
      sim::ClusterSim sim_run(cfg);
      const sim::SimResult result = sim_run.run();
      for (const auto& [t, count] : result.stripe_completions) {
        (void)count;
        simulated.completion_times.push_back(t - result.encode_begin);
      }
      simulated.encode_duration = result.encode_end - result.encode_begin;
      simulated.write_before = result.write_response_before.mean();
      simulated.write_during = result.write_response_during.mean();

      if (!csv_prefix.empty()) {
        const std::string base = csv_prefix + (use_ear ? "_ear" : "_rr");
        const std::string stripe_path = base + "_stripes.csv";
        if (!sim::write_stripe_completion_csv(result, stripe_path)) {
          std::fprintf(stderr, "error: cannot write %s: %s\n",
                       stripe_path.c_str(), std::strerror(errno));
          rc = 1;
        }
        const std::string resp_path = base + "_responses.csv";
        if (!sim::write_response_times_csv(result, resp_path)) {
          std::fprintf(stderr, "error: cannot write %s: %s\n",
                       resp_path.c_str(), std::strerror(errno));
          rc = 1;
        }
      }
    }

    bench::row("---- %s ----", use_ear ? "EAR" : "RR");
    bench::row("%18s | %10s | %10s", "stripes encoded", "testbed s",
               "sim s");
    for (size_t i = 3; i < testbed.completion_times.size() &&
                       i < simulated.completion_times.size();
         i += 4) {
      bench::row("%18zu | %10.2f | %10.2f", i + 1,
                 testbed.completion_times[i], simulated.completion_times[i]);
    }
    bench::row("encode duration: testbed %.2f s, sim %.2f s (diff %+.1f%%)",
               testbed.encode_duration, simulated.encode_duration,
               100.0 * (simulated.encode_duration / testbed.encode_duration -
                        1.0));
    bench::row("write response w/o encoding: testbed %.4f s, sim %.4f s",
               testbed.write_before, simulated.write_before);
    bench::row("write response w/  encoding: testbed %.4f s, sim %.4f s",
               testbed.write_during, simulated.write_during);
  }
  bench::note("paper Table I: testbed-vs-simulation differences < 4.3%");
  return rc;
}
