// Figure 15, Experiment C.2: read load balancing.  For file sizes from 1 to
// 10,000 blocks, computes the hotness index H — the largest per-rack share
// of uniformly-random read requests — under RR and EAR.
//
// Paper expectation: H decreases with file size toward 1/R = 5% and the two
// policies are nearly identical at every size.
//
//   ./bench_fig15_read_balance --csv-out fig15.csv
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/balance.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 30));
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("file_blocks,runs,rr_hotness_pct,ear_hotness_pct\n");
  }

  bench::header("Figure 15", "read hotness index H vs file size, RR vs EAR");
  bench::row("%12s | %10s | %10s", "file blocks", "RR H %", "EAR H %");
  for (const int blocks : std::vector<int>{1, 3, 10, 30, 100, 300, 1000,
                                           3000, 10000}) {
    analysis::BalanceConfig rr_cfg;
    rr_cfg.use_ear = false;
    analysis::BalanceConfig ear_cfg;
    ear_cfg.use_ear = true;
    const int r = blocks >= 3000 ? std::max(3, runs / 10) : runs;
    const double rr = analysis::read_hotness_index(rr_cfg, blocks, r);
    const double ear_h = analysis::read_hotness_index(ear_cfg, blocks, r);
    bench::row("%12d | %10.2f | %10.2f", blocks, rr, ear_h);
    if (!csv_path.empty()) {
      csv.row("%d,%d,%.4f,%.4f\n", blocks, r, rr, ear_h);
    }
  }
  bench::note("paper: RR and EAR have almost identical H at every file size");
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
