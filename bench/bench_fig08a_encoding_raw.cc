// Figure 8(a), Experiment A.1: raw encoding throughput of RR vs EAR on the
// 12-rack testbed for (n,k) in {(6,4), (8,6), (10,8), (12,10)}, 2-way
// replication, no competing traffic.
//
// Paper expectation: throughput rises with k for both policies (relatively
// less parity to write); EAR's gain over RR grows from ~20% (k=4) to ~60%
// (k=10) because RR downloads more blocks across racks as k grows.
//   ./bench_fig08a_encoding_raw --csv-out fig08a.csv
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "bench/testbed_util.h"
#include "common/csv.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  // --smoke: tiny one-config run for CI sanitizer jobs — exercises the full
  // staged encode pipeline end to end in a few seconds, not a benchmark.
  const bool smoke = flags.get_bool("smoke");
  const int runs = smoke ? 1 : static_cast<int>(flags.get_int("runs", 3));
  const bench::ObsOutputs obs_out = bench::obs_from_flags(flags);
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("n,k,runs,rr_mbps_mean,rr_mbps_min,rr_mbps_max,"
            "ear_mbps_mean,ear_mbps_min,ear_mbps_max,gain_pct\n");
  }

  bench::header("Figure 8(a)",
                "raw encoding throughput vs (n,k), testbed, 2-way "
                "replication");
  bench::row("%8s | %22s | %22s | %8s", "(n,k)", "RR MB/s (min..max)",
             "EAR MB/s (min..max)", "gain");

  const std::vector<int> ks = smoke ? std::vector<int>{4}
                                    : std::vector<int>{4, 6, 8, 10};
  for (const int k : ks) {
    Summary rr, ear_s;
    for (int run = 0; run < runs; ++run) {
      for (const bool use_ear : {false, true}) {
        auto params = bench::TestbedParams::from_flags(flags);
        params.k = k;
        params.n = k + 2;
        params.seed = static_cast<uint64_t>(run * 2 + 1);
        if (smoke) {
          params.stripes = 3;
          params.block_size = 256_KB;
          params.throttle.chunk_size = 64_KB;
          params.throttle.node_bw = 100e6;
          params.throttle.rack_uplink_bw = 100e6;
          params.throttle.disk_bw = 130e6;
        }
        auto testbed = bench::make_loaded_testbed(params, use_ear);
        cfs::RaidNode raid(*testbed.cfs, /*map_slots=*/12);
        const cfs::EncodeReport report =
            raid.encode_stripes(testbed.stripes);
        (use_ear ? ear_s : rr).add(report.throughput_mbps);
      }
    }
    bench::row("%8s | %8.1f (%6.1f..%6.1f) | %8.1f (%6.1f..%6.1f) | %+6.1f%%",
               ("(" + std::to_string(k + 2) + "," + std::to_string(k) + ")")
                   .c_str(),
               rr.mean(), rr.min(), rr.max(), ear_s.mean(), ear_s.min(),
               ear_s.max(), 100.0 * (ear_s.mean() / rr.mean() - 1.0));
    if (!csv_path.empty()) {
      csv.row("%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n", k + 2, k,
              runs, rr.mean(), rr.min(), rr.max(), ear_s.mean(), ear_s.min(),
              ear_s.max(), 100.0 * (ear_s.mean() / rr.mean() - 1.0));
    }
  }
  bench::note("paper: gain grows with k, 19.9% at k=4 to 59.7% at k=10");
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return bench::obs_export(obs_out);
}
