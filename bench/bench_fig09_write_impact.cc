// Figure 9, Experiment A.2: impact of encoding on write performance.  A
// Poisson write stream runs alone for a warm-up window, then the encoding
// job starts; we record per-request write response times and the total
// encoding time for RR vs EAR.
//
// Paper expectation: similar write response times before encoding; during
// encoding EAR cuts the average write response time (~12%) and the overall
// encoding time (~32%, at (10,8) with writes competing).
//   ./bench_fig09_write_impact --csv-out fig09.csv
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "bench/testbed_util.h"
#include "cfs/workload.h"
#include "common/csv.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const double write_rate = flags.get_double("write-rate", 3.0);
  const double warmup_s = flags.get_double("warmup", 3.0);
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row(
        "mode,encode_time_s,writes,before_mean_s,during_mean_s,"
        "during_p50_s,during_p99_s,during_p999_s\n");
  }

  bench::header("Figure 9", "write response times while encoding runs");

  double encode_time[2] = {0, 0};
  double before_mean[2] = {0, 0};
  double during_mean[2] = {0, 0};

  for (const bool use_ear : {false, true}) {
    auto params = bench::TestbedParams::from_flags(flags);
    auto testbed = bench::make_loaded_testbed(params, use_ear);

    cfs::WriteWorkload writes(*testbed.cfs, write_rate, 7);
    writes.start();
    std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));

    cfs::RaidNode raid(*testbed.cfs, 12);
    const auto encode_start = std::chrono::steady_clock::now();
    const cfs::EncodeReport report = raid.encode_stripes(testbed.stripes);
    (void)encode_start;
    writes.stop();

    Summary before, during;
    for (const auto& [issue, response] : writes.samples()) {
      (issue < warmup_s ? before : during).add(response);
    }
    const int idx = use_ear ? 1 : 0;
    encode_time[idx] = report.duration_s;
    before_mean[idx] = before.empty() ? 0 : before.mean();
    during_mean[idx] = during.empty() ? 0 : during.mean();
    const auto during_pct = LatencyPercentiles::from(during);

    bench::row("%-4s: encode time %6.2f s | write response before %7.4f s, "
               "during %7.4f s (%zu writes)",
               use_ear ? "EAR" : "RR", report.duration_s, before_mean[idx],
               during_mean[idx], writes.samples().size());
    bench::row("      during-encoding tail: %s", during_pct.format().c_str());
    if (!csv_path.empty()) {
      csv.row("%s,%.4f,%zu,%.6f,%.6f,%.6f,%.6f,%.6f\n",
              use_ear ? "EAR" : "RR", report.duration_s,
              writes.samples().size(), before_mean[idx], during_mean[idx],
              during_pct.p50, during_pct.p99, during_pct.p999);
    }

    // Response-time timeline (averaged buckets of 3 requests, as in the
    // paper's plot).
    const auto samples = writes.samples();
    std::printf("  timeline:");
    for (size_t i = 0; i + 2 < samples.size(); i += 3) {
      const double avg = (samples[i].second + samples[i + 1].second +
                          samples[i + 2].second) /
                         3.0;
      std::printf(" %.0f:%.3f", samples[i].first, avg);
    }
    std::printf("\n");
  }

  bench::row("encoding time reduction: %5.1f%% (paper: 31.6%%)",
             100.0 * (1.0 - encode_time[1] / encode_time[0]));
  if (during_mean[0] > 0) {
    bench::row("write response reduction during encoding: %5.1f%% "
               "(paper: 12.4%%)",
               100.0 * (1.0 - during_mean[1] / during_mean[0]));
  }
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
