// Microbenchmarks of the placement machinery: Dinic max-flow on EAR-shaped
// graphs, the per-block EAR placement step (flow check + retries), and RR
// placement for comparison.
#include <benchmark/benchmark.h>

#include "placement/ear.h"
#include "placement/random_replication.h"

namespace {

using namespace ear;

PlacementConfig b2_placement(int k, int c = 1) {
  PlacementConfig cfg;
  cfg.code = CodeParams{k + 4, k};
  cfg.replication = 3;
  cfg.c = c;
  return cfg;
}

void BM_EarStripeMaxFlow(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Topology topo(20, 20);
  Rng rng(1);
  // A realistic stripe: first replica in rack 0, secondaries in a random
  // other rack.
  std::vector<std::vector<NodeId>> replicas;
  for (int i = 0; i < k; ++i) {
    std::vector<NodeId> r;
    r.push_back(static_cast<NodeId>(rng.uniform(20)));  // core rack node
    const auto rack = static_cast<RackId>(1 + rng.uniform(19));
    r.push_back(topo.rack_first_node(rack) +
                static_cast<NodeId>(rng.uniform(20)));
    r.push_back(topo.rack_first_node(rack) +
                static_cast<NodeId>(rng.uniform(20)));
    replicas.push_back(std::move(r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ear_stripe_max_flow(topo, 1, replicas, {}));
  }
}
BENCHMARK(BM_EarStripeMaxFlow)->Arg(6)->Arg(10)->Arg(12)->Arg(16);

void BM_EarPlaceBlock(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Topology topo(20, 20);
  EncodingAwareReplication policy(topo, b2_placement(k), 7);
  BlockId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.place_block(next++, std::nullopt));
  }
  state.counters["draws/block"] =
      static_cast<double>(policy.total_layout_iterations()) /
      static_cast<double>(policy.total_blocks_placed());
}
BENCHMARK(BM_EarPlaceBlock)->Arg(10)->Arg(12);

void BM_EarPlaceBlockTargetRacks(benchmark::State& state) {
  const Topology topo(20, 20);
  auto cfg = b2_placement(10, 4);
  cfg.target_racks = 4;
  EncodingAwareReplication policy(topo, cfg, 8);
  BlockId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.place_block(next++, std::nullopt));
  }
  state.counters["draws/block"] =
      static_cast<double>(policy.total_layout_iterations()) /
      static_cast<double>(policy.total_blocks_placed());
}
BENCHMARK(BM_EarPlaceBlockTargetRacks);

void BM_RrPlaceBlock(benchmark::State& state) {
  const Topology topo(20, 20);
  RandomReplication policy(topo, b2_placement(10), 9);
  BlockId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.place_block(next++, std::nullopt));
  }
}
BENCHMARK(BM_RrPlaceBlock);

void BM_EarPlanEncoding(benchmark::State& state) {
  const Topology topo(20, 20);
  EncodingAwareReplication policy(topo, b2_placement(10), 10);
  BlockId next = 0;
  std::vector<StripeId> sealed;
  while (sealed.size() < 4096) {
    policy.place_block(next++, std::nullopt);
    sealed = policy.sealed_stripes();
  }
  size_t i = 0;
  for (auto _ : state) {
    if (i >= sealed.size()) {
      state.SkipWithError("ran out of sealed stripes");
      break;
    }
    benchmark::DoNotOptimize(policy.plan_encoding(sealed[i++]));
  }
}
BENCHMARK(BM_EarPlanEncoding)->Iterations(4000);

}  // namespace

BENCHMARK_MAIN();
