// Theorem 1: expected number of replica-layout draws EAR needs for the i-th
// data block of a stripe.  Compares the theorem's upper bound
// (R-1)/(R-1-floor((i-1)/c)) against iterations measured from the actual
// EAR implementation.
//
// Paper expectation: E_i grows with i, stays tiny (<= 1.9 for k = 10,
// R = 20, c = 1), and the bound holds.
#include <vector>

#include "analysis/availability.h"
#include "bench/bench_util.h"
#include "placement/ear.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int racks = static_cast<int>(flags.get_int("racks", 20));
  const int nodes = static_cast<int>(flags.get_int("nodes-per-rack", 20));
  const int k = static_cast<int>(flags.get_int("k", 10));
  const int c = static_cast<int>(flags.get_int("c", 1));
  const int stripes = static_cast<int>(flags.get_int("stripes", 2000));

  PlacementConfig cfg;
  cfg.code = CodeParams{k + 4, k};
  cfg.replication = 3;
  cfg.c = c;

  const Topology topo(racks, nodes);
  EncodingAwareReplication ear_policy(topo, cfg, 99);

  // Measure iterations per stripe position.  place_block returns the draw
  // count; the position inside the stripe is the stripe's size after the
  // block joined.
  std::vector<double> sum(static_cast<size_t>(k), 0.0);
  std::vector<double> max_seen(static_cast<size_t>(k), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(k), 0);
  BlockId next = 0;
  while (static_cast<int>(ear_policy.sealed_stripes().size()) < stripes) {
    const BlockPlacement p = ear_policy.place_block(next++, std::nullopt);
    const int pos =
        static_cast<int>(ear_policy.stripe(p.stripe).blocks.size()) - 1;
    sum[static_cast<size_t>(pos)] += p.iterations;
    max_seen[static_cast<size_t>(pos)] =
        std::max(max_seen[static_cast<size_t>(pos)],
                 static_cast<double>(p.iterations));
    ++count[static_cast<size_t>(pos)];
  }

  bench::header("Theorem 1",
                "expected layout draws per stripe position (R=" +
                    std::to_string(racks) + ", k=" + std::to_string(k) +
                    ", c=" + std::to_string(c) + ")");
  bench::row("%6s | %12s %12s %12s", "i", "bound", "measured", "max");
  for (int i = 1; i <= k; ++i) {
    bench::row("%6d | %12.3f %12.3f %12.0f", i,
               analysis::theorem1_iteration_bound(racks, i, c),
               sum[static_cast<size_t>(i - 1)] /
                   static_cast<double>(count[static_cast<size_t>(i - 1)]),
               max_seen[static_cast<size_t>(i - 1)]);
  }
  bench::note("paper remark: E_i <= 1.9 for i = k = 10, R = 20, c = 1");
  return 0;
}
