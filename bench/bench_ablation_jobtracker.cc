// Ablation of the paper's §IV-B JobTracker modifications, on the DES.
//
// EAR's zero-cross-rack-download property needs BOTH the placement AND the
// scheduler: the RaidNode attaches a preferred core-rack node to each map
// task and an "encoding job" flag that forbids scheduling outside the core
// rack.  This bench encodes the same EAR-placed stripes under three
// scheduling policies and, for contrast, RR placements under the best one.
//
// Expectation: strict = 0 cross-rack downloads; preferred = close to 0 when
// slots are plentiful, degrading when the cluster is busy; none = nearly as
// bad as RR.
#include "bench/bench_util.h"
#include "common/flags.h"
#include "mapred/encoding_job.h"
#include "sim/network.h"

namespace {

using namespace ear;

struct Row {
  std::string label;
  mapred::EncodingJobReport report;
};

Row run(bool use_ear, mapred::EncodingLocality locality, int slots,
        const std::string& label, int stripes, int nodes_per_rack = 20) {
  const Topology topo(20, nodes_per_rack);
  sim::Engine engine;
  sim::Network network(engine, topo, sim::NetConfig{});
  PlacementConfig pc;
  pc.code = CodeParams{14, 10};
  pc.replication = nodes_per_rack == 1 ? 2 : 3;
  auto policy = use_ear ? make_encoding_aware_replication(topo, pc, 3)
                        : make_random_replication(topo, pc, 3);
  BlockId next = 0;
  while (static_cast<int>(policy->sealed_stripes().size()) < stripes) {
    policy->place_block(next++, std::nullopt);
  }
  auto list = policy->sealed_stripes();
  list.resize(static_cast<size_t>(stripes));

  mapred::EncodingJobConfig cfg;
  cfg.map_slots_per_node = slots;
  cfg.locality = locality;
  mapred::EncodingJob job(engine, network, *policy, cfg);
  job.submit(list);
  engine.run();
  return Row{label, job.report()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int stripes = static_cast<int>(flags.get_int("stripes", 60));

  bench::header("Ablation: JobTracker integration (§IV-B)",
                "encoding the same stripes under different map scheduling");
  bench::row("%-34s | %10s | %10s | %12s | %10s", "variant", "time (s)",
             "core-rack", "elsewhere", "cross-dl");
  const std::vector<Row> rows{
      run(true, mapred::EncodingLocality::kStrict, 2,
          "EAR + encoding-job flag", stripes),
      run(true, mapred::EncodingLocality::kPreferred, 2,
          "EAR + preferred node only", stripes),
      run(true, mapred::EncodingLocality::kPreferred, 1,
          "EAR + preferred, 1-node racks", stripes, 1),
      run(true, mapred::EncodingLocality::kStrict, 1,
          "EAR + flag, 1-node racks", stripes, 1),
      run(true, mapred::EncodingLocality::kNone, 2,
          "EAR, no locality", stripes),
      run(false, mapred::EncodingLocality::kPreferred, 2,
          "RR + preferred node", stripes),
  };
  for (const Row& r : rows) {
    bench::row("%-34s | %10.1f | %10d | %12d | %10ld", r.label.c_str(),
               r.report.duration, r.report.tasks_in_core_rack,
               r.report.tasks_elsewhere,
               static_cast<long>(r.report.cross_rack_downloads));
  }
  bench::note("the flag guarantees 0 cross-rack downloads; preferred-only "
              "degrades when slots are scarce; placement alone is not "
              "enough");
  return 0;
}
