// Shared setup for the MiniCfs testbed benches (Experiments A.1, A.2, B.1).
//
// The paper's testbed: 13 machines = 1 master + 12 single-DataNode racks,
// 1 Gb/s Ethernet, 64 MB blocks, 2-way replication, (k+2, k) codes,
// 96 stripes.  The scaled default here keeps the topology and replication
// but shrinks blocks/stripes and emulates ~100 MB/s links so each run takes
// seconds; --paper-scale restores the full sizes.
#pragma once

#include <memory>
#include <vector>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/flags.h"
#include "common/rng.h"
#include "placement/replica_layout.h"

namespace ear::bench {

struct TestbedParams {
  int racks = 12;
  int nodes_per_rack = 1;
  int n = 10;
  int k = 8;
  int replication = 2;
  int stripes = 24;
  Bytes block_size = 1_MB;
  // Reader-side block cache budget (0 = disabled, the pre-cache read path)
  // and degraded-read fetch lanes (0 = one per source, 1 = round-robin).
  Bytes cache_bytes = 0;
  int read_fanout_lanes = 0;
  // Distributed encode/repair DAGs (CfsConfig::ecdag_enable).
  bool ecdag = false;
  // Give every block distinct random bytes instead of one shared payload —
  // required when a bench asserts parity byte-identity across data paths
  // (identical payloads make XOR cancellations mask coefficient bugs).
  bool distinct_payloads = false;
  cfs::ThrottleConfig throttle{};
  uint64_t seed = 1;

  static TestbedParams from_flags(const FlagParser& flags) {
    TestbedParams p;
    p.racks = static_cast<int>(flags.get_int("racks", 12));
    p.k = static_cast<int>(flags.get_int("k", 8));
    p.n = static_cast<int>(flags.get_int("n", p.k + 2));
    p.stripes = static_cast<int>(flags.get_int("stripes", 24));
    p.block_size = flags.get_bool("paper-scale")
                       ? 64_MB
                       : static_cast<Bytes>(flags.get_int(
                             "block-bytes", 1_MB));
    if (flags.get_bool("paper-scale")) p.stripes = 96;
    // Default emulated speeds are deliberately slow (1 Gb/s : SATA disk
    // ratio preserved at ~1:1.3) so that data movement dominates the real
    // Reed-Solomon compute even on a single-core host.
    p.throttle.node_bw = flags.get_double("node-bw", 10e6);
    p.throttle.rack_uplink_bw =
        flags.get_double("rack-bw", p.throttle.node_bw);
    p.throttle.disk_bw = flags.get_double("disk-bw", 13e6);
    p.throttle.chunk_size = std::max<Bytes>(64_KB, p.block_size / 16);
    p.cache_bytes = static_cast<Bytes>(flags.get_int("cache-bytes", 0));
    p.read_fanout_lanes =
        static_cast<int>(flags.get_int("fanout-lanes", 0));
    p.ecdag = flags.get_bool("ecdag");
    p.seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    return p;
  }
};

// Builds a MiniCfs, pre-loads `stripes` sealed stripes instantly (the data
// was written long before the measured window), then switches to the
// throttled transport.  Returns the CFS and the stripe list.
struct LoadedTestbed {
  std::unique_ptr<cfs::MiniCfs> cfs;
  std::vector<StripeId> stripes;
};

inline LoadedTestbed make_loaded_testbed(const TestbedParams& params,
                                         bool use_ear) {
  cfs::CfsConfig cfg;
  cfg.racks = params.racks;
  cfg.nodes_per_rack = params.nodes_per_rack;
  cfg.placement.code = CodeParams{params.n, params.k};
  cfg.placement.replication = params.replication;
  cfg.placement.c = 1;
  cfg.use_ear = use_ear;
  cfg.block_size = params.block_size;
  cfg.cache_bytes = params.cache_bytes;
  cfg.read_fanout_lanes = params.read_fanout_lanes;
  cfg.ecdag_enable = params.ecdag;
  cfg.seed = params.seed;

  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));

  Rng rng(params.seed ^ 0xabcdULL);
  std::vector<uint8_t> payload(static_cast<size_t>(params.block_size));
  for (auto& b : payload) b = static_cast<uint8_t>(rng.uniform(256));
  // Writers rotate round-robin over the nodes, like a uniformly-loaded
  // ingest tier; this also balances EAR's core racks.
  NodeId writer = static_cast<NodeId>(rng.uniform(
      static_cast<uint64_t>(topo.node_count())));
  while (static_cast<int>(cfs->sealed_stripes().size()) < params.stripes) {
    if (params.distinct_payloads) {
      for (auto& b : payload) b = static_cast<uint8_t>(rng.uniform(256));
    }
    cfs->write_block(payload, writer);
    writer = (writer + 1) % topo.node_count();
  }
  auto stripes = cfs->sealed_stripes();
  stripes.resize(static_cast<size_t>(params.stripes));

  cfs->set_transport(
      std::make_unique<cfs::ThrottledTransport>(topo, params.throttle));
  return LoadedTestbed{std::move(cfs), std::move(stripes)};
}

}  // namespace ear::bench
