// Shared driver for the Figure 13 simulation sweeps (Experiment B.2).
//
// Each sweep varies one parameter of the large-scale simulation (20 racks x
// 20 nodes, (14,10), 3-way replication, 64 MB blocks, Poisson write and
// background streams) and reports the throughput of EAR normalized over RR,
// as a boxplot over independent seeded runs — exactly the quantity the
// paper's Figure 13 plots.
//
// Metrics:
//  * encode ratio — (data encoded / encoding time) of EAR over RR;
//  * write ratio  — mean per-request write goodput (block size / response
//    time) during the encoding window, EAR over RR.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/stats.h"
#include "sim/cluster.h"

namespace ear::bench {

inline sim::SimConfig default_b2_config(const FlagParser& flags) {
  sim::SimConfig cfg;
  cfg.racks = 20;
  cfg.nodes_per_rack = 20;
  cfg.net.node_bw = gbps(1);
  cfg.net.rack_uplink_bw = gbps(1);
  cfg.placement.code = CodeParams{14, 10};
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.block_size = 64_MB;
  cfg.write_rate = 1.0;
  cfg.background_rate = 1.0;
  cfg.background_mean_size = 64_MB;
  cfg.background_cross_fraction = 0.5;
  cfg.encode_start = 10.0;
  cfg.encode_processes = 20;
  cfg.stripes_per_process =
      static_cast<int>(flags.get_int("stripes-per-process",
                                     flags.get_bool("paper-scale") ? 50 : 10));
  // --encode-pipeline-chunks=N > 1 switches the simulated encode to the
  // testbed's staged chunk pipeline (download/compute/upload overlap); the
  // default 1 keeps the paper's serial-phase model.
  cfg.encode_pipeline_chunks =
      static_cast<int>(flags.get_int("encode-pipeline-chunks", 1));
  return cfg;
}

struct RatioSamples {
  Summary encode_ratio;
  Summary write_ratio;
};

inline double write_goodput(const sim::SimResult& r, Bytes block) {
  // Mean per-request goodput during the encoding window.
  const auto& s = r.write_response_during;
  if (s.empty()) return 0.0;
  double acc = 0;
  for (const double resp : s.samples()) {
    acc += to_mb(block) / std::max(resp, 1e-9);
  }
  return acc / static_cast<double>(s.count());
}

// Runs RR and EAR with paired seeds `runs` times.
inline RatioSamples run_pairs(const sim::SimConfig& base, int runs) {
  RatioSamples out;
  for (int run = 0; run < runs; ++run) {
    sim::SimConfig rr_cfg = base;
    rr_cfg.use_ear = false;
    rr_cfg.seed = static_cast<uint64_t>(run + 1);
    sim::SimConfig ear_cfg = rr_cfg;
    ear_cfg.use_ear = true;

    const sim::SimResult rr = sim::ClusterSim(rr_cfg).run();
    const sim::SimResult ear = sim::ClusterSim(ear_cfg).run();
    if (rr.encode_throughput_mbps > 0) {
      out.encode_ratio.add(ear.encode_throughput_mbps /
                           rr.encode_throughput_mbps);
    }
    const double rr_write = write_goodput(rr, rr_cfg.block_size);
    const double ear_write = write_goodput(ear, ear_cfg.block_size);
    if (rr_write > 0 && ear_write > 0) {
      out.write_ratio.add(ear_write / rr_write);
    }
  }
  return out;
}

inline void print_ratio_row(const std::string& label,
                            const RatioSamples& samples) {
  const auto e = samples.encode_ratio.boxplot();
  row("%14s | encode %5.2f [%4.2f %4.2f %4.2f] | write %5.2f [%4.2f %4.2f "
      "%4.2f]",
      label.c_str(), e.median, e.min, samples.encode_ratio.mean(), e.max,
      samples.write_ratio.empty() ? 0.0 : samples.write_ratio.median(),
      samples.write_ratio.empty() ? 0.0 : samples.write_ratio.min(),
      samples.write_ratio.empty() ? 0.0 : samples.write_ratio.mean(),
      samples.write_ratio.empty() ? 0.0 : samples.write_ratio.max());
}

inline void print_ratio_header() {
  row("%14s | %-38s | %-36s", "param",
      "EAR/RR encode thpt med [min mean max]",
      "EAR/RR write goodput med [min mean max]");
}

// --csv-out sink shared by the ratio sweeps (common/csv.h): one row per
// swept parameter value with the full boxplot of both ratios.  With no
// --csv-out the rows go to /dev/null, so sweeps call add() unconditionally.
class RatioCsv {
 public:
  explicit RatioCsv(const FlagParser& flags)
      : path_(flags.get_string("csv-out")),
        writer_(path_.empty() ? "/dev/null" : path_) {
    if (!path_.empty() && !writer_.ok()) {
      std::fprintf(stderr, "cannot open %s\n", path_.c_str());
      std::exit(1);
    }
    writer_.row(
        "sweep,param,encode_median,encode_min,encode_mean,encode_max,"
        "write_median,write_min,write_mean,write_max\n");
  }

  void add(const std::string& sweep, const std::string& label,
           const RatioSamples& s) {
    const auto& e = s.encode_ratio;
    const auto& w = s.write_ratio;
    writer_.row("%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                sweep.c_str(), label.c_str(), e.empty() ? 0.0 : e.median(),
                e.empty() ? 0.0 : e.min(), e.empty() ? 0.0 : e.mean(),
                e.empty() ? 0.0 : e.max(), w.empty() ? 0.0 : w.median(),
                w.empty() ? 0.0 : w.min(), w.empty() ? 0.0 : w.mean(),
                w.empty() ? 0.0 : w.max());
  }

  // Main's exit code: deferred write failures (ENOSPC at flush time) must
  // fail the bench instead of silently truncating the result file.
  int close() {
    const bool ok = writer_.close();
    if (!path_.empty() && !ok) {
      std::perror("csv close");
      return 1;
    }
    return 0;
  }

 private:
  std::string path_;
  CsvWriter writer_;
};

}  // namespace ear::bench
