// Extension experiment: chaos engineering for the transition pipeline, plus
// a Monte Carlo reliability comparison of RR vs EAR (the paper's §III claim
// that EAR preserves — here: improves — reliability, quantified as MTTDL and
// P(data loss by t)).
//
// Part 1 — deterministic replay.  A seeded FailureProcess schedule is applied
// to a mixed (half-encoded) EAR namespace in virtual time; after every event
// the RepairManager drains its priority queue synchronously.  The run is
// executed twice and the two event logs must compare byte-identical — the
// subsystem's reproducibility contract.
//
// Part 2 — live chaos.  The same machinery under real threads: heartbeat
// pump -> failure detector -> repair workers race a RaidNode encoding job
// while a RealTimeFailureDriver kills and revives nodes and racks.  Verifies
// every block is readable once the dust settles and reports detector false
// positives and repair work done.
//
// Part 3 — reliability.  estimate_reliability() over actual RR and EAR
// placements, before and after encoding, under independent node and rack
// exponential lifetimes.  Post-encoding RR concentrates stripes (up to n
// blocks of a stripe may share a rack), so a single rack failure loses data;
// EAR's c=1 rack constraint survives it.  The bench checks
// P(no loss | EAR) >= P(no loss | RR) after encoding.
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "bench/testbed_util.h"
#include "cfs/raidnode.h"
#include "common/csv.h"
#include "failure/detector.h"
#include "failure/events.h"
#include "failure/process.h"
#include "failure/reliability.h"
#include "failure/repair.h"

namespace {

using namespace ear;

int count_readable(cfs::MiniCfs& cfs) {
  NodeId reader = kInvalidNode;
  for (NodeId n = 0; n < cfs.topology().node_count(); ++n) {
    if (cfs.node_alive(n)) {
      reader = n;
      break;
    }
  }
  if (reader == kInvalidNode) return 0;
  int readable = 0;
  for (const BlockId b : cfs.all_blocks()) {
    try {
      cfs.read_block(b, reader);
      ++readable;
    } catch (const std::runtime_error&) {
    }
  }
  return readable;
}

// ---- Part 1 ---------------------------------------------------------------

std::string run_chaos_deterministic(const bench::TestbedParams& tparams,
                                    const failure::FailureModel& model,
                                    Seconds horizon) {
  auto loaded = bench::make_loaded_testbed(tparams, /*use_ear=*/true);
  cfs::MiniCfs& cfs = *loaded.cfs;
  // Virtual-time replay: no emulated link delays.
  cfs.set_transport(std::make_unique<cfs::InstantTransport>(cfs.topology()));

  // Encode the first half so chaos hits a mixed namespace — replicated
  // blocks exercise re-replication, encoded ones exercise decode-rebuild.
  for (size_t i = 0; i < loaded.stripes.size() / 2; ++i) {
    cfs.encode_stripe(loaded.stripes[i]);
  }

  const std::vector<failure::FailureEvent> events =
      failure::FailureProcess(cfs.topology(), model).generate(horizon);

  failure::RepairConfig rcfg;
  rcfg.max_attempts = 2;
  failure::RepairManager repair(cfs, rcfg);

  std::string log;
  char line[192];
  for (const auto& ev : events) {
    failure::apply_event(cfs, ev);
    log += failure::format_event(ev);
    log += '\n';
    int queued = 0;
    if (ev.kind == failure::EventKind::kNodeFail) {
      queued = repair.schedule_node(ev.id);
    } else if (ev.kind == failure::EventKind::kRackFail) {
      queued = repair.schedule_rack(ev.id);
    }
    const auto d = repair.drain();
    std::snprintf(line, sizeof(line),
                  "  queued=%d repaired=%lld re_replicated=%lld noop=%lld "
                  "retries=%lld unrecoverable=%lld bytes=%lld\n",
                  queued, static_cast<long long>(d.repaired),
                  static_cast<long long>(d.re_replicated),
                  static_cast<long long>(d.noop),
                  static_cast<long long>(d.retries),
                  static_cast<long long>(d.unrecoverable),
                  static_cast<long long>(d.bytes_moved));
    log += line;
  }

  const auto total = repair.report();
  std::snprintf(line, sizeof(line),
                "total events=%zu repaired=%lld re_replicated=%lld "
                "unrecoverable=%lld bytes=%lld readable=%d/%zu\n",
                events.size(), static_cast<long long>(total.repaired),
                static_cast<long long>(total.re_replicated),
                static_cast<long long>(total.unrecoverable),
                static_cast<long long>(total.bytes_moved),
                count_readable(cfs), cfs.all_blocks().size());
  log += line;
  return log;
}

// ---- Part 2 ---------------------------------------------------------------

struct LiveOutcome {
  size_t events_applied = 0;
  int64_t false_positives = 0;
  failure::RepairManager::Report repair;
  size_t encode_failures = 0;
  size_t encode_retried_ok = 0;
  int readable = 0;
  size_t total_blocks = 0;
  cfs::NamespaceSnapshot final_snapshot;
};

LiveOutcome run_chaos_live(const bench::TestbedParams& tparams,
                           const failure::FailureModel& model,
                           Seconds horizon, double compression) {
  auto loaded = bench::make_loaded_testbed(tparams, /*use_ear=*/true);
  cfs::MiniCfs& cfs = *loaded.cfs;
  cfs.set_transport(std::make_unique<cfs::InstantTransport>(cfs.topology()));

  const std::vector<failure::FailureEvent> events =
      failure::FailureProcess(cfs.topology(), model).generate(horizon);

  failure::DetectorConfig dcfg;
  dcfg.timeout = 0.06;
  dcfg.check_interval = 0.02;
  failure::FailureDetector detector(cfs.topology().node_count(), dcfg);
  failure::HeartbeatPump pump(cfs, detector, /*period=*/0.01);

  failure::RepairConfig rcfg;
  rcfg.workers = 2;
  rcfg.repair_bandwidth = 256e6;  // cap repair traffic under the encode job
  failure::RepairManager repair(cfs, rcfg);

  repair.start();
  detector.start([&](const failure::FailureDetector::Event& ev) {
    if (ev.down) repair.schedule_node(ev.node);
  });
  pump.start();

  failure::RealTimeFailureDriver driver(cfs, events, compression);
  driver.start();

  // The encoding job races the chaos — stripes whose replicas die mid-job
  // fail cleanly and are retried below once redundancy is back.
  cfs::RaidNode raid(cfs, /*map_slots=*/2);
  cfs::EncodeReport encode = raid.encode_stripes(loaded.stripes);

  driver.wait();
  repair.wait_idle();

  LiveOutcome out;
  out.events_applied = driver.events_applied();
  out.encode_failures = encode.failed.size();

  // Chaos over: transient failures resolve, stragglers report back, and the
  // failed encodes get their retry.
  cfs.revive_all();
  if (!encode.failed.empty()) {
    cfs.restore_redundancy();
    const cfs::EncodeReport retry = raid.encode_stripes(encode.failed);
    out.encode_retried_ok = encode.failed.size() - retry.failed.size();
  }
  pump.stop();
  detector.stop();
  repair.stop();
  cfs.restore_redundancy();

  out.false_positives = detector.false_positives();
  out.repair = repair.report();
  out.readable = count_readable(cfs);
  out.total_blocks = cfs.all_blocks().size();
  out.final_snapshot = cfs.namespace_snapshot();
  return out;
}

// ---- Part 3 ---------------------------------------------------------------

struct PolicyReliability {
  failure::ReliabilityResult pre;
  failure::ReliabilityResult post;
};

PolicyReliability policy_reliability(bool use_ear, const Topology& topo,
                                     const PlacementConfig& pcfg,
                                     int stripes, uint64_t seed,
                                     const failure::ReliabilityConfig& rcfg) {
  auto policy = use_ear ? make_encoding_aware_replication(topo, pcfg, seed)
                        : make_random_replication(topo, pcfg, seed);
  BlockId next = 0;
  while (static_cast<int>(policy->sealed_stripes().size()) < stripes) {
    policy->place_block(next++, std::nullopt);
  }
  PolicyReliability out;
  out.pre = failure::estimate_reliability(
      topo, failure::replicated_placements(*policy), rcfg);
  out.post = failure::estimate_reliability(
      topo, failure::encoded_placements(*policy), rcfg);
  return out;
}

const char* fmt_mttdl(double v, char* buf, size_t len) {
  if (v == std::numeric_limits<double>::infinity()) return ">horizon";
  std::snprintf(buf, len, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const bench::ObsOutputs obs_out = bench::obs_from_flags(flags);

  bench::TestbedParams tparams = bench::TestbedParams::from_flags(flags);
  if (!flags.has("k")) tparams.k = 6;
  if (!flags.has("n")) tparams.n = tparams.k + 2;
  if (!flags.has("stripes")) tparams.stripes = 200;
  if (!flags.has("block-bytes") && !flags.get_bool("paper-scale")) {
    tparams.block_size = 16_KB;
  }
  tparams.nodes_per_rack =
      static_cast<int>(flags.get_int("nodes-per-rack", 2));

  failure::FailureModel model;
  model.node_mttf = flags.get_double("node-mttf", 20);
  model.node_mttr = flags.get_double("node-mttr", 3);
  model.rack_mttf = flags.get_double("rack-mttf", 60);
  model.rack_mttr = flags.get_double("rack-mttr", 5);
  model.seed = tparams.seed ^ 0x5eedULL;
  const Seconds horizon = flags.get_double("horizon", 8);

  const std::string csv_out = flags.get_string("csv-out", "");
  const std::string log_out = flags.get_string("log-out", "");

  // ---- Part 1: deterministic replay, twice --------------------------------
  bench::header("Extension: chaos replay",
                "seeded failure schedule, drained repair, run twice");
  const std::string log_a = run_chaos_deterministic(tparams, model, horizon);
  const std::string log_b = run_chaos_deterministic(tparams, model, horizon);
  const bool identical = log_a == log_b;
  {
    // The last line is the run's summary; echo it.
    const size_t cut = log_a.rfind("total ");
    bench::row("  %s", cut == std::string::npos
                           ? "(empty schedule)"
                           : log_a.substr(cut, log_a.size() - cut - 1).c_str());
  }
  bench::row("  event log: %zu bytes, replay %s", log_a.size(),
             identical ? "byte-identical (PASS)" : "DIVERGED (FAIL)");
  if (!log_out.empty()) {
    CsvWriter f(log_out);
    if (!f.ok()) {
      std::fprintf(stderr, "error: cannot open %s: %s\n", log_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    f.row("%s", log_a.c_str());
    if (!f.close()) {
      std::fprintf(stderr, "error: writing %s failed: %s\n", log_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    bench::note("wrote " + log_out);
  }
  // CI byte-identity gate: stop after the replay comparison so the gate is
  // cheap and its exit code reflects determinism alone.
  if (flags.get_bool("replay-only")) return identical ? 0 : 1;

  // ---- Part 2: live threads ----------------------------------------------
  bench::header("Extension: live chaos",
                "heartbeat detector + repair workers vs encoding job");
  const double compression = flags.get_double("compression", 20);
  const LiveOutcome live = run_chaos_live(tparams, model, horizon, compression);
  bench::row("  events applied      %zu", live.events_applied);
  bench::row("  detector false pos. %lld",
             static_cast<long long>(live.false_positives));
  bench::row("  repaired/re-repl.   %lld / %lld",
             static_cast<long long>(live.repair.repaired),
             static_cast<long long>(live.repair.re_replicated));
  bench::row("  repair noops        %lld (stale tasks re-verified away)",
             static_cast<long long>(live.repair.noop));
  bench::row("  encode failures     %zu (retried ok: %zu)",
             live.encode_failures, live.encode_retried_ok);
  bench::row("  blocks readable     %d/%zu %s", live.readable,
             live.total_blocks,
             static_cast<size_t>(live.readable) == live.total_blocks
                 ? "(PASS)"
                 : "(FAIL)");
  const bool live_ok =
      static_cast<size_t>(live.readable) == live.total_blocks;

  // ---- Part 3: Monte Carlo reliability ------------------------------------
  bench::header("Extension: reliability",
                "P(data loss) and MTTDL, RR vs EAR, pre/post encoding");
  failure::ReliabilityConfig rel;
  rel.node_mttf = flags.get_double("rel-node-mttf", 2000);
  rel.node_mttr = flags.get_double("rel-node-mttr", 10);
  rel.rack_mttf = flags.get_double("rel-rack-mttf", 500);
  rel.rack_mttr = flags.get_double("rel-rack-mttr", 20);
  rel.horizon = flags.get_double("rel-horizon", 400);
  rel.trials = static_cast<int>(flags.get_int("trials", 300));
  rel.seed = tparams.seed;

  const Topology topo(tparams.racks, tparams.nodes_per_rack);
  PlacementConfig pcfg;
  pcfg.code = CodeParams{tparams.n, tparams.k};
  pcfg.replication = tparams.replication;
  pcfg.c = 1;

  const PolicyReliability rr =
      policy_reliability(false, topo, pcfg, tparams.stripes, tparams.seed, rel);
  const PolicyReliability ear =
      policy_reliability(true, topo, pcfg, tparams.stripes, tparams.seed, rel);
  const failure::ReliabilityResult as_operated = failure::estimate_reliability(
      topo, failure::placements_from_snapshot(live.final_snapshot, tparams.k),
      rel);

  char m1[32], m2[32];
  bench::row("  %-18s | %8s | %10s | %10s", "placement", "p_loss", "p_no_loss",
             "mttdl_s");
  bench::row("  %-18s | %8.3f | %10.3f | %10s", "RR pre-encode",
             rr.pre.p_loss, rr.pre.p_no_loss,
             fmt_mttdl(rr.pre.mttdl, m1, sizeof(m1)));
  bench::row("  %-18s | %8.3f | %10.3f | %10s", "EAR pre-encode",
             ear.pre.p_loss, ear.pre.p_no_loss,
             fmt_mttdl(ear.pre.mttdl, m1, sizeof(m1)));
  bench::row("  %-18s | %8.3f | %10.3f | %10s", "RR post-encode",
             rr.post.p_loss, rr.post.p_no_loss,
             fmt_mttdl(rr.post.mttdl, m1, sizeof(m1)));
  bench::row("  %-18s | %8.3f | %10.3f | %10s", "EAR post-encode",
             ear.post.p_loss, ear.post.p_no_loss,
             fmt_mttdl(ear.post.mttdl, m2, sizeof(m2)));
  bench::row("  %-18s | %8.3f | %10.3f | %10s", "live cluster",
             as_operated.p_loss, as_operated.p_no_loss,
             fmt_mttdl(as_operated.mttdl, m1, sizeof(m1)));
  const bool ear_wins = ear.post.p_no_loss >= rr.post.p_no_loss;
  bench::note(ear_wins
                  ? "EAR >= RR on P(no data loss) after encoding (PASS)"
                  : "EAR < RR on P(no data loss) after encoding (FAIL)");
  bench::note("RR may stack >m blocks of a stripe in one rack after encoding;"
              " EAR's c=1 constraint caps exposure at one block per rack");

  if (!csv_out.empty()) {
    CsvWriter csv(csv_out);
    if (!csv.ok()) {
      std::fprintf(stderr, "error: cannot open %s: %s\n", csv_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    csv.row("placement,phase,trials,losses,p_loss,p_no_loss,mttdl_s\n");
    const auto emit = [&csv](const char* placement, const char* phase,
                             const failure::ReliabilityResult& r) {
      csv.row("%s,%s,%d,%d,%.6f,%.6f,%.3f\n", placement, phase, r.trials,
              r.losses, r.p_loss, r.p_no_loss, r.mttdl);
    };
    emit("rr", "pre", rr.pre);
    emit("ear", "pre", ear.pre);
    emit("rr", "post", rr.post);
    emit("ear", "post", ear.post);
    emit("live", "post", as_operated);
    if (!csv.close()) {
      std::fprintf(stderr, "error: writing %s failed: %s\n", csv_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    bench::note("wrote " + csv_out);
  }

  const int obs_rc = bench::obs_export(obs_out);
  if (!identical || !live_ok || !ear_wins) return 1;
  return obs_rc;
}
