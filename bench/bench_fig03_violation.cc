// Figure 3: probability that a stripe placed by the *preliminary* EAR
// violates rack-level fault tolerance, versus the number of racks R, for
// k in {6, 8, 10, 12}.  Prints both the Equation (1) closed form and a
// Monte-Carlo estimate over actual random placements.
//
// Paper expectation: f is close to 1 for small R (0.97 at k=12, R=16) and
// decreases as R grows; larger k shifts the curve up.
//
//   ./bench_fig03_violation --csv-out fig03.csv
#include <cstdio>
#include <string>

#include "analysis/availability.h"
#include "bench/bench_util.h"
#include "common/csv.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int trials = static_cast<int>(flags.get_int("trials", 100000));
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("racks,k,trials,eq1_probability,mc_probability\n");
  }

  bench::header("Figure 3",
                "P(stripe violates rack fault tolerance) under preliminary "
                "EAR");
  bench::row("%6s | %10s %10s | %10s %10s | %10s %10s | %10s %10s", "racks",
             "k=6 eq1", "k=6 mc", "k=8 eq1", "k=8 mc", "k=10 eq1", "k=10 mc",
             "k=12 eq1", "k=12 mc");
  for (int racks = 14; racks <= 60; racks += 2) {
    double eq[4], mc[4];
    const int ks[4] = {6, 8, 10, 12};
    for (int i = 0; i < 4; ++i) {
      eq[i] = analysis::preliminary_violation_probability(racks, ks[i]);
      mc[i] = analysis::preliminary_violation_probability_mc(
          racks, ks[i], trials, seed + static_cast<uint64_t>(racks * 4 + i));
      if (!csv_path.empty()) {
        csv.row("%d,%d,%d,%.6f,%.6f\n", racks, ks[i], trials, eq[i], mc[i]);
      }
    }
    bench::row("%6d | %10.4f %10.4f | %10.4f %10.4f | %10.4f %10.4f | "
               "%10.4f %10.4f",
               racks, eq[0], mc[0], eq[1], mc[1], eq[2], mc[2], eq[3], mc[3]);
  }
  bench::note("paper anchor: f ~= 0.97 for k = 12, R = 16");
  bench::row("anchor check: f(16, 12) = %.4f",
             ear::analysis::preliminary_violation_probability(16, 12));
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
