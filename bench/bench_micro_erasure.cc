// Microbenchmarks of the coding substrates: GF(2^8) kernels and the
// Reed-Solomon codec (both constructions), via google-benchmark.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "erasure/clay.h"
#include "erasure/codec.h"
#include "erasure/crs.h"
#include "erasure/hitchhiker.h"
#include "erasure/lrc.h"
#include "erasure/rs.h"
#include "gf256/gf256.h"
#include "gf256/kernel.h"

namespace {

using namespace ear;

std::vector<uint8_t> random_bytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(256));
  return out;
}

// Every run label carries the dispatched GF(2^8) kernel so before/after
// comparisons (EAR_GF_KERNEL=scalar vs auto) stay attributable in the CSV.
std::string kernel_label(const std::string& extra = "") {
  const std::string k = std::string("kernel_") + gf::kernel().name;
  return extra.empty() ? k : extra + "|" + k;
}

void BM_GfMulAdd(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const auto src = random_bytes(size, 1);
  auto dst = random_bytes(size, 2);
  for (auto _ : state) {
    gf::mul_add(0x53, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  state.SetLabel(kernel_label());
}
BENCHMARK(BM_GfMulAdd)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_GfXorAdd(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const auto src = random_bytes(size, 3);
  auto dst = random_bytes(size, 4);
  for (auto _ : state) {
    gf::xor_add(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  state.SetLabel(kernel_label());
}
BENCHMARK(BM_GfXorAdd)->Arg(65536)->Arg(1 << 20);

void rs_encode_bench(benchmark::State& state,
                     erasure::Construction construction) {
  const int k = static_cast<int>(state.range(0));
  const int n = k + 4;
  const size_t block = 256 * 1024;
  const erasure::RSCode code(n, k, construction);

  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < k; ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i + 10)));
  }
  parity.assign(static_cast<size_t>(n - k), std::vector<uint8_t>(block));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());

  for (auto _ : state) {
    code.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block) * k);
  state.SetLabel(kernel_label());
}

void BM_RsEncodeCauchy(benchmark::State& state) {
  rs_encode_bench(state, erasure::Construction::kCauchy);
}
BENCHMARK(BM_RsEncodeCauchy)->Arg(4)->Arg(8)->Arg(10)->Arg(12);

void BM_RsEncodeVandermonde(benchmark::State& state) {
  rs_encode_bench(state, erasure::Construction::kVandermonde);
}
BENCHMARK(BM_RsEncodeVandermonde)->Arg(10);

void BM_RsDecodeWorstCase(benchmark::State& state) {
  // All n - k data blocks erased; rebuilt from the parity set.
  const int k = static_cast<int>(state.range(0));
  const int n = k + 4;
  const size_t block = 256 * 1024;
  const erasure::RSCode code(n, k);

  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < k; ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i + 50)));
  }
  parity.assign(static_cast<size_t>(n - k), std::vector<uint8_t>(block));
  {
    std::vector<erasure::BlockView> dv(data.begin(), data.end());
    std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
    code.encode(dv, pv);
  }

  // Available: data blocks 4..k-1 plus all parity.
  std::vector<int> ids;
  std::vector<erasure::BlockView> available;
  for (int i = 4; i < k; ++i) {
    ids.push_back(i);
    available.emplace_back(data[static_cast<size_t>(i)]);
  }
  for (int j = 0; j < n - k; ++j) {
    ids.push_back(k + j);
    available.emplace_back(parity[static_cast<size_t>(j)]);
  }
  std::vector<std::vector<uint8_t>> out(4, std::vector<uint8_t>(block));
  std::vector<erasure::MutBlockView> ov(out.begin(), out.end());

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        code.reconstruct(ids, available, {0, 1, 2, 3}, ov));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block) * 4);
  state.SetLabel(kernel_label());
}
BENCHMARK(BM_RsDecodeWorstCase)->Arg(8)->Arg(10)->Arg(12);


void BM_CrsEncodeXorOnly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = k + 4;
  const size_t block = 256 * 1024;
  const erasure::CRSCode code(n, k);

  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < k; ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i + 90)));
  }
  parity.assign(static_cast<size_t>(n - k), std::vector<uint8_t>(block));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());

  for (auto _ : state) {
    code.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block) * k);
  // As the run label, not a custom counter: the CSV reporter aborts when a
  // counter appears in some runs but not others.
  state.SetLabel(
      kernel_label(std::to_string(code.schedule_xor_count()) + "_xors"));
}
BENCHMARK(BM_CrsEncodeXorOnly)->Arg(8)->Arg(10)->Arg(12);

void BM_LrcEncode(benchmark::State& state) {
  const size_t block = 256 * 1024;
  const erasure::LRCCode code(12, 2, 2);
  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < code.k(); ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i + 120)));
  }
  parity.assign(static_cast<size_t>(code.l() + code.g()),
                std::vector<uint8_t>(block));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
  for (auto _ : state) {
    code.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block) * code.k());
  state.SetLabel(kernel_label());
}
BENCHMARK(BM_LrcEncode);

void BM_LrcLocalRepair(benchmark::State& state) {
  const size_t block = 256 * 1024;
  const erasure::LRCCode code(12, 2, 2);
  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < code.k(); ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i + 150)));
  }
  parity.assign(static_cast<size_t>(code.l() + code.g()),
                std::vector<uint8_t>(block));
  {
    std::vector<erasure::BlockView> dv(data.begin(), data.end());
    std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
    code.encode(dv, pv);
  }
  std::vector<std::vector<uint8_t>> all = data;
  all.insert(all.end(), parity.begin(), parity.end());
  const auto plan = code.repair_plan(0);
  std::vector<erasure::BlockView> sources;
  for (const int id : plan) sources.emplace_back(all[static_cast<size_t>(id)]);
  std::vector<uint8_t> out(block);
  for (auto _ : state) {
    code.repair(0, sources, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
  state.SetLabel(kernel_label());
}
BENCHMARK(BM_LrcLocalRepair);

// ------------------------------------------------ sub-packetized vector codes

// Shared scaffold: encodes a full stripe through the ErasureCodec interface,
// then (for the repair variants) executes the single-block RepairPlan of
// data block 0 with apply_plan_chunk over the gathered sub-block units.
struct VectorStripe {
  explicit VectorStripe(const erasure::ErasureCodec& codec, size_t block,
                        uint64_t seed)
      : block_size(block) {
    for (int i = 0; i < codec.k(); ++i) {
      blocks.push_back(
          random_bytes(block, seed + static_cast<uint64_t>(i)));
    }
    std::vector<erasure::BlockView> dv(blocks.begin(), blocks.end());
    std::vector<std::vector<uint8_t>> parity(
        static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
    std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
    codec.encode(dv, pv);
    for (auto& p : parity) blocks.push_back(std::move(p));
  }

  // Units the plan fetches, in plan order.
  std::vector<erasure::BlockView> plan_units(
      const erasure::RepairPlan& plan) const {
    const size_t sub = block_size / static_cast<size_t>(plan.alpha);
    std::vector<erasure::BlockView> units;
    for (const auto& src : plan.sources) {
      for (const int z : src.sub_blocks) {
        units.push_back(
            erasure::BlockView(blocks[static_cast<size_t>(src.id)])
                .subspan(static_cast<size_t>(z) * sub, sub));
      }
    }
    return units;
  }

  size_t block_size;
  std::vector<std::vector<uint8_t>> blocks;
};

void vector_encode_bench(benchmark::State& state,
                         const erasure::ErasureCodec& codec) {
  const size_t block = 256 * 1024;  // divisible by every alpha <= 256
  std::vector<std::vector<uint8_t>> data, parity;
  for (int i = 0; i < codec.k(); ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i + 180)));
  }
  parity.assign(static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
  for (auto _ : state) {
    codec.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block) * codec.k());
  state.SetLabel(kernel_label("alpha_" + std::to_string(codec.alpha())));
}

void vector_repair_bench(benchmark::State& state,
                         const erasure::ErasureCodec& codec) {
  const size_t block = 256 * 1024;
  const VectorStripe stripe(codec, block, 210);
  std::vector<int> available;
  for (int i = 1; i < codec.n(); ++i) available.push_back(i);
  erasure::RepairPlan plan;
  if (!codec.plan_repair(0, available, &plan)) {
    state.SkipWithError("plan_repair failed");
    return;
  }
  const auto units = stripe.plan_units(plan);
  std::vector<uint8_t> out(block);
  for (auto _ : state) {
    erasure::ErasureCodec::apply_plan_chunk(plan, units, out, 0,
                                            codec.sub_block_size(block));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
  // Network bytes the plan moves, in 1/100ths of a block (run label: the
  // CSV reporter aborts on counters that appear only in some runs).
  state.SetLabel(kernel_label(
      std::to_string(plan.bytes_read(static_cast<ear::Bytes>(block)) * 100 /
                     static_cast<int64_t>(block)) +
      "pct_block_read"));
}

void BM_ClayEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const erasure::ClayCode code(k + 4, k);
  vector_encode_bench(state, code);
}
BENCHMARK(BM_ClayEncode)->Arg(8)->Arg(10);

void BM_ClaySingleBlockRepair(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const erasure::ClayCode code(k + 4, k);
  vector_repair_bench(state, code);
}
BENCHMARK(BM_ClaySingleBlockRepair)->Arg(8)->Arg(10);

void BM_HitchhikerEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const erasure::HitchhikerCode code(k + 4, k);
  vector_encode_bench(state, code);
}
BENCHMARK(BM_HitchhikerEncode)->Arg(8)->Arg(10);

void BM_HitchhikerSingleBlockRepair(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const erasure::HitchhikerCode code(k + 4, k);
  vector_repair_bench(state, code);
}
BENCHMARK(BM_HitchhikerSingleBlockRepair)->Arg(8)->Arg(10);

}  // namespace

// Custom main so the micro bench speaks the same CLI as the scenario benches
// (--smoke, --csv-out <path>).  google-benchmark rejects unknown flags, so
// both are stripped before Initialize and rewritten as native flags:
// --csv-out maps to --benchmark_out/--benchmark_out_format=csv and --smoke
// caps per-benchmark time so CI finishes in seconds.
int main(int argc, char** argv) {
  std::vector<std::string> translated;
  translated.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      translated.emplace_back("--benchmark_min_time=0.01");
    } else if (std::strcmp(argv[i], "--csv-out") == 0 && i + 1 < argc) {
      translated.emplace_back(std::string("--benchmark_out=") + argv[++i]);
      translated.emplace_back("--benchmark_out_format=csv");
    } else {
      translated.emplace_back(argv[i]);
    }
  }
  std::vector<char*> args;
  for (auto& s : translated) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
