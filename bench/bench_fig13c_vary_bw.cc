// Figure 13(c), Experiment B.2: normalized EAR/RR throughput vs the link
// bandwidth of top-of-rack switches and the network core.
//
// Paper expectation: the scarcer the bandwidth, the bigger EAR's advantage —
// encoding gain reaches ~165% at 0.2 Gb/s and shrinks toward 2 Gb/s.
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 5));

  bench::RatioCsv csv(flags);

  bench::header("Figure 13(c)", "EAR/RR normalized throughput vs link bw");
  bench::print_ratio_header();
  for (const double gb : {0.2, 0.5, 1.0, 1.5, 2.0}) {
    auto cfg = bench::default_b2_config(flags);
    cfg.net.node_bw = gbps(gb);
    cfg.net.rack_uplink_bw = gbps(gb);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f Gb/s", gb);
    const auto samples = bench::run_pairs(cfg, runs);
    bench::print_ratio_row(label, samples);
    csv.add("vary_bw", label, samples);
  }
  bench::note("paper: encode gain 165.2% at 0.2 Gb/s, decreasing with bw; "
              "write gain ~20%");
  return csv.close();
}
