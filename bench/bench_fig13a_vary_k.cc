// Figure 13(a), Experiment B.2: normalized EAR/RR throughput vs k, with
// n - k = 4 fixed.
//
// Paper expectation: the encoding gain grows with k (cross-rack downloads
// dominate RR more), reaching ~79% at k = 12; write gains 20-37%.
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 5));

  bench::RatioCsv csv(flags);

  bench::header("Figure 13(a)", "EAR/RR normalized throughput vs k (n-k=4)");
  bench::print_ratio_header();
  for (const int k : {6, 8, 10, 12}) {
    auto cfg = bench::default_b2_config(flags);
    cfg.placement.code = CodeParams{k + 4, k};
    const std::string label = "k=" + std::to_string(k);
    const auto samples = bench::run_pairs(cfg, runs);
    bench::print_ratio_row(label, samples);
    csv.add("vary_k", label, samples);
  }
  bench::note("paper: encode gain grows with k, ~70% at k=10, 78.7% at k=12");
  return csv.close();
}
