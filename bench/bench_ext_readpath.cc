// Extension bench: the fast read path — reader-side block cache and
// parallel degraded-read fan-out.
//
// Phase 1 (hot reads): a map-only read job scans every data block from
// fixed random remote readers, `passes` times over.  With the cache the
// first pass fills it and later passes are served reader-locally (zero
// copies, zero transport bytes); with --cache-bytes 0 every pass pays the
// full emulated transfer.  Reported: aggregate hot-read throughput, which
// the cache should improve by roughly the pass count.
//
// Phase 2 (degraded reads): stripes are encoded, one DataNode is killed,
// rack up-links run oversubscribed (--oversub, the classic cross-rack
// bottleneck; the paper's testbed contends on exactly this link) and
// interference traffic is injected on every surviving rack up-link (the
// paper's Iperf-style congestion).  The round-robin baseline
// (--fanout-lanes 1) pulls its k sources one after another, each at the
// slow rack-uplink rate, leaving the reader's down-link mostly idle;
// per-source fan-out lanes pull all k in parallel, so the read completes
// at the down-link rate instead of k serial up-link transfers.  Reported:
// mean/max degraded-read completion per mode.
//
//   ./bench_ext_readpath                     # both phases, defaults
//   ./bench_ext_readpath --smoke             # tiny run for sanitizer CI
//   ./bench_ext_readpath --cache-bytes 0     # phase 1 baseline only
//   ./bench_ext_readpath --csv-out readpath.csv --metrics-out m.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "bench/testbed_util.h"
#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/csv.h"
#include "common/flags.h"
#include "mapred/read_job.h"

namespace {

using namespace ear;
using Clock = std::chrono::steady_clock;

struct HotResult {
  Bytes cache_bytes = 0;
  int passes = 0;
  int64_t blocks = 0;
  double secs = 0;
  double mbps = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t transport_bytes = 0;
};

// P passes of the same read job over every data block, fixed random remote
// readers (the job pins each block's reader across passes).
HotResult run_hot(const ear::bench::TestbedParams& params, Bytes cache_bytes,
                  int passes, int map_slots) {
  ear::bench::TestbedParams p = params;
  p.cache_bytes = cache_bytes;
  auto testbed = ear::bench::make_loaded_testbed(p, /*use_ear=*/true);
  cfs::MiniCfs& cfs = *testbed.cfs;
  const std::vector<BlockId> blocks = cfs.all_blocks();

  mapred::ReadJobConfig job_cfg;
  job_cfg.map_slots = map_slots;
  job_cfg.locality = mapred::ReadLocality::kRandomRemote;
  job_cfg.seed = params.seed;  // same reader pinning in every trial
  mapred::TestbedReadJob job(cfs, job_cfg);

  HotResult r;
  r.cache_bytes = cache_bytes;
  r.passes = passes;
  const auto t0 = Clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    const auto report = job.run(blocks);
    r.blocks += report.blocks_read;
  }
  r.secs = std::chrono::duration<double>(Clock::now() - t0).count();
  r.mbps = r.secs > 0 ? static_cast<double>(r.blocks) *
                            static_cast<double>(params.block_size) / 1e6 /
                            r.secs
                      : 0;
  if (const datapath::BlockCache* cache = cfs.block_cache()) {
    r.cache_hits = cache->hits();
    r.cache_misses = cache->misses();
  }
  r.transport_bytes =
      cfs.transport().cross_rack_bytes() + cfs.transport().intra_rack_bytes();
  return r;
}

struct DegradedResult {
  int lanes = 0;  // 0 = one per source
  int64_t reads = 0;
  double mean_s = 0;
  double max_s = 0;
};

// Encodes the stripes (on the instant transport — conversion happened long
// before the measured window), kills one DataNode, injects interference on
// every surviving rack up-link, then times each degraded read.
DegradedResult run_degraded(const ear::bench::TestbedParams& params, int lanes,
                            int max_reads, Bytes inject_bytes,
                            double oversub) {
  ear::bench::TestbedParams p = params;
  p.cache_bytes = 0;  // isolate the fan-out effect
  p.read_fanout_lanes = lanes;
  // Congested egress: rack up-links carry 1/oversub of a node link (the
  // interference direction), while rack ingress stays at full speed — so
  // the reader's down-link, not the sources, should be the bottleneck.
  if (oversub > 1) {
    p.throttle.rack_downlink_bw = p.throttle.rack_uplink_bw;
    p.throttle.rack_uplink_bw = p.throttle.node_bw / oversub;
  }
  auto testbed = ear::bench::make_loaded_testbed(p, /*use_ear=*/true);
  cfs::MiniCfs& cfs = *testbed.cfs;
  const Topology& topo = cfs.topology();

  cfs.set_transport(std::make_unique<cfs::InstantTransport>(topo));
  cfs::RaidNode raid(cfs, /*map_slots=*/4);
  raid.encode_stripes(testbed.stripes);
  cfs.set_transport(
      std::make_unique<cfs::ThrottledTransport>(topo, p.throttle));

  const NodeId victim = 0;
  cfs.kill_node(victim);

  // Degraded blocks: encoded blocks whose only copy died with the victim.
  std::vector<BlockId> degraded;
  for (const BlockId b : cfs.all_blocks()) {
    bool live = false;
    for (const NodeId n : cfs.block_locations(b)) {
      if (cfs.node_alive(n)) live = true;
    }
    if (!live) degraded.push_back(b);
    if (static_cast<int>(degraded.size()) >= max_reads) break;
  }

  // The reader sits in the last rack; interference rides every other
  // surviving rack's up-link toward the victim's (otherwise idle) down-link.
  const NodeId reader = topo.node_count() - 1;
  for (RackId r = 0; r < topo.rack_count(); ++r) {
    const NodeId src = topo.nodes_in_rack(r).front();
    if (src == victim || topo.same_rack(src, reader)) continue;
    cfs.transport().inject(src, victim, inject_bytes);
  }

  DegradedResult res;
  res.lanes = lanes;
  double total = 0;
  for (const BlockId b : degraded) {
    const auto t0 = Clock::now();
    const auto bytes = cfs.read_block(b, reader);
    const double took = std::chrono::duration<double>(Clock::now() - t0).count();
    if (bytes.size() != static_cast<size_t>(p.block_size)) {
      std::fprintf(stderr, "degraded read returned short block\n");
      std::exit(1);
    }
    total += took;
    res.max_s = std::max(res.max_s, took);
    ++res.reads;
  }
  res.mean_s = res.reads > 0 ? total / static_cast<double>(res.reads) : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.get_bool("smoke");
  const ear::bench::ObsOutputs obs = ear::bench::obs_from_flags(flags);

  ear::bench::TestbedParams params = ear::bench::TestbedParams::from_flags(flags);
  if (smoke) {
    params.stripes = 2;
    params.block_size = std::min<Bytes>(params.block_size, 256_KB);
    params.throttle.chunk_size = 64_KB;
  }
  const int passes = static_cast<int>(flags.get_int("passes", smoke ? 2 : 4));
  const int map_slots =
      static_cast<int>(flags.get_int("map-slots", smoke ? 4 : 12));
  const Bytes cache_bytes = static_cast<Bytes>(
      flags.get_int("cache-bytes", smoke ? 64_MB : 256_MB));
  const int degraded_reads =
      static_cast<int>(flags.get_int("degraded-reads", smoke ? 2 : 6));
  const Bytes inject_bytes = static_cast<Bytes>(
      flags.get_int("inject-bytes", smoke ? 512_KB : 5_MB));
  const double oversub = flags.get_double("oversub", 4.0);
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("phase,mode,blocks,secs,mbps,mean_s,max_s,hits,misses\n");
  }

  ear::bench::header("ext-readpath",
                     "reader-side block cache + degraded-read fan-out");

  // ---- phase 1: hot reads ------------------------------------------------
  ear::bench::note("hot reads: fixed random remote readers, " +
                   std::to_string(passes) + " passes over every block");
  const HotResult cold = run_hot(params, 0, passes, map_slots);
  const HotResult warm = run_hot(params, cache_bytes, passes, map_slots);
  ear::bench::row("%-22s %8s %10s %12s %12s %10s %10s", "mode", "blocks",
                  "secs", "agg MB/s", "net MB", "hits", "misses");
  for (const HotResult& r : {cold, warm}) {
    ear::bench::row("%-22s %8lld %10.2f %12.1f %12.1f %10lld %10lld",
                    r.cache_bytes > 0 ? "cache" : "no-cache (baseline)",
                    static_cast<long long>(r.blocks), r.secs, r.mbps,
                    static_cast<double>(r.transport_bytes) / 1e6,
                    static_cast<long long>(r.cache_hits),
                    static_cast<long long>(r.cache_misses));
    if (!csv_path.empty()) {
      csv.row("hot,%s,%lld,%.4f,%.1f,,,%lld,%lld\n",
              r.cache_bytes > 0 ? "cache" : "nocache",
              static_cast<long long>(r.blocks), r.secs, r.mbps,
              static_cast<long long>(r.cache_hits),
              static_cast<long long>(r.cache_misses));
    }
  }
  const double speedup = cold.mbps > 0 ? warm.mbps / cold.mbps : 0;
  ear::bench::note("hot-read speedup with cache: " +
                   std::to_string(speedup) + "x (expected ~pass count)");

  // ---- phase 2: degraded reads -------------------------------------------
  ear::bench::note("degraded reads: node 0 dead, rack up-links " +
                   std::to_string(oversub) +
                   "x oversubscribed, interference injected on every "
                   "surviving rack up-link");
  const DegradedResult rr =
      run_degraded(params, 1, degraded_reads, inject_bytes, oversub);
  const DegradedResult fan =
      run_degraded(params, 0, degraded_reads, inject_bytes, oversub);
  ear::bench::row("%-22s %8s %12s %12s", "mode", "reads", "mean s", "max s");
  for (const DegradedResult& r : {rr, fan}) {
    ear::bench::row("%-22s %8lld %12.3f %12.3f",
                    r.lanes == 1 ? "round-robin (baseline)" : "fan-out",
                    static_cast<long long>(r.reads), r.mean_s, r.max_s);
    if (!csv_path.empty()) {
      csv.row("degraded,%s,%lld,,,%.4f,%.4f,,\n",
              r.lanes == 1 ? "roundrobin" : "fanout",
              static_cast<long long>(r.reads), r.mean_s, r.max_s);
    }
  }
  const double gain = fan.mean_s > 0 ? rr.mean_s / fan.mean_s : 0;
  ear::bench::note("degraded completion gain from fan-out: " +
                   std::to_string(gain) + "x (round-robin serializes k "
                   "slow up-link pulls; lanes overlap them and fill the "
                   "reader's down-link)");

  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return ear::bench::obs_export(obs);
}
