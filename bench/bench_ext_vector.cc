// Extension experiment: sub-packetized vector codes (Clay / MSR, FAST'18;
// Hitchhiker, SIGCOMM'14) against the scalar Reed-Solomon and LRC baselines.
//
// Part 1 tabulates, per codec family and (n,k), the network bytes a
// single-block repair plan moves — averaged over every lost position — as a
// fraction of the scalar RS cost of k full blocks.
//
// Part 2 runs real degraded reads on the MiniCfs testbed at each family's
// matched geometry: kill every holder of a data block, read it back through
// the RepairPlan execution path, and report measured transport bytes and
// wall-clock latency.  The run fails (non-zero exit) if a reconstructed
// block is not byte-identical to the original, or if Clay's single-block
// repair moves more than 0.6x the RS network bytes at the same (n,k).
//
// Usage:
//   ./bench_ext_vector                 # full run
//   ./bench_ext_vector --smoke        # tiny run for sanitizer CI
//   ./bench_ext_vector --csv-out=vector.csv
#include <cerrno>
#include <cstring>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cfs/minicfs.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/rng.h"
#include "erasure/codec.h"

namespace {

using namespace ear;
using erasure::CodecFamily;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Mean plan bytes over every lost position, in units of one block.
double mean_plan_blocks(const erasure::ErasureCodec& codec, Bytes block) {
  double total = 0;
  for (int lost = 0; lost < codec.n(); ++lost) {
    std::vector<int> available;
    for (int i = 0; i < codec.n(); ++i) {
      if (i != lost) available.push_back(i);
    }
    erasure::RepairPlan plan;
    if (!codec.plan_repair(lost, available, &plan)) {
      return -1;
    }
    total += static_cast<double>(plan.bytes_read(block)) /
             static_cast<double>(block);
  }
  return total / codec.n();
}

struct TestbedSample {
  CodecFamily family = CodecFamily::kRS;
  int64_t repair_bytes = 0;
  double degraded_ms = 0;
  bool bytes_identical = false;
};

TestbedSample run_testbed(CodecFamily family, const CodeParams& code,
                          Bytes block_size, int reads) {
  cfs::CfsConfig cfg;
  cfg.racks = code.n + 1;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = code;
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = block_size;
  cfg.seed = 23;
  cfg.codec_family = family;

  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::MiniCfs cfs(cfg, std::make_unique<cfs::InstantTransport>(topo));
  Rng rng(29);
  std::map<BlockId, std::vector<uint8_t>> originals;
  while (cfs.sealed_stripes().empty()) {
    std::vector<uint8_t> data(static_cast<size_t>(block_size));
    for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cfs.write_block(data);
    originals[id] = std::move(data);
  }
  const StripeId stripe = cfs.sealed_stripes()[0];
  cfs.encode_stripe(stripe);
  const auto meta = cfs.stripe_meta(stripe);

  const BlockId victim = meta.data_blocks[1];
  for (const NodeId holder : cfs.block_locations(victim)) {
    cfs.kill_node(holder);
  }
  NodeId reader = 0;
  while (!cfs.node_alive(reader)) ++reader;

  TestbedSample s;
  s.family = family;
  const int64_t before =
      cfs.transport().cross_rack_bytes() + cfs.transport().intra_rack_bytes();
  s.bytes_identical = true;
  const double t0 = now_ms();
  for (int i = 0; i < reads; ++i) {
    const auto got = cfs.read_block(victim, reader);
    if (got != originals.at(victim)) s.bytes_identical = false;
  }
  s.degraded_ms = (now_ms() - t0) / reads;
  const int64_t after =
      cfs.transport().cross_rack_bytes() + cfs.transport().intra_rack_bytes();
  s.repair_bytes = (after - before) / reads;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const bool smoke = flags.get_bool("smoke");
  const std::string csv_out = flags.get_string("csv-out", "");
  const Bytes block_size =
      static_cast<Bytes>(flags.get_int("block-bytes", smoke ? 64_KB : 4_MB));
  const int reads = static_cast<int>(flags.get_int("reads", smoke ? 2 : 8));

  struct CsvRow {
    std::string section;
    std::string family;
    int n, k, alpha;
    double repair_blocks;  // network cost of one repair, in blocks
    double ratio_vs_rs;
    double degraded_ms;  // testbed only; 0 in the plan table
  };
  std::vector<CsvRow> csv_rows;

  // ---- Part 1: repair-plan network bytes per family ------------------------
  bench::header("Extension: vector codecs",
                "single-block repair network cost per codec family");
  struct Geometry {
    CodeParams code;
    std::vector<CodecFamily> families;
  };
  const std::vector<Geometry> geometries = {
      {{8, 6},
       {CodecFamily::kRS, CodecFamily::kClay, CodecFamily::kHitchhiker}},
      {{12, 8},
       {CodecFamily::kRS, CodecFamily::kLRC, CodecFamily::kClay,
        CodecFamily::kHitchhiker}},
      {{14, 10},
       {CodecFamily::kRS, CodecFamily::kLRC, CodecFamily::kClay,
        CodecFamily::kHitchhiker}},
  };
  bench::row("%-14s %8s %6s | %14s | %10s", "code", "family", "alpha",
             "repair blocks", "vs RS");
  bool clay_ok = true;
  for (const Geometry& g : geometries) {
    const double rs_blocks = static_cast<double>(g.code.k);
    for (const CodecFamily family : g.families) {
      const auto codec = erasure::make_codec(family, g.code.n, g.code.k);
      const double blocks = mean_plan_blocks(*codec, block_size);
      const double ratio = blocks / rs_blocks;
      char label[32];
      std::snprintf(label, sizeof(label), "(%d,%d)", g.code.n, g.code.k);
      bench::row("%-14s %8s %6d | %14.3f | %9.3fx", label,
                 codec->name(), codec->alpha(), blocks, ratio);
      csv_rows.push_back({"plan", codec->name(), g.code.n, g.code.k,
                          codec->alpha(), blocks, ratio, 0});
      // Acceptance: Clay single-block repair of a *data* block moves at
      // most 0.6x the RS bytes.  The mean over all n positions includes
      // parity repairs; check data position 0's plan directly.
      if (family == CodecFamily::kClay) {
        std::vector<int> available;
        for (int i = 1; i < codec->n(); ++i) available.push_back(i);
        erasure::RepairPlan plan;
        if (!codec->plan_repair(0, available, &plan) ||
            static_cast<double>(plan.bytes_read(block_size)) >
                0.6 * rs_blocks * static_cast<double>(block_size)) {
          clay_ok = false;
        }
      }
    }
  }
  bench::note("repair blocks = mean network bytes over every lost position, "
              "in units of one block; RS reads k full blocks");
  if (!clay_ok) {
    std::fprintf(stderr,
                 "FAIL: Clay repair plan exceeds 0.6x RS network bytes\n");
    return 1;
  }

  // ---- Part 2: testbed degraded reads --------------------------------------
  bench::header("Extension: vector codecs (testbed)",
                "degraded read through the RepairPlan execution path");
  const CodeParams testbed_code{14, 10};
  bench::row("%8s | %14s | %10s | %12s | %s", "family", "repair bytes",
             "vs RS", "latency(ms)", "bytes ok");
  int64_t rs_bytes = 0;
  bool all_identical = true;
  bool clay_testbed_ok = true;
  for (const CodecFamily family :
       {CodecFamily::kRS, CodecFamily::kLRC, CodecFamily::kClay,
        CodecFamily::kHitchhiker}) {
    const TestbedSample s =
        run_testbed(family, testbed_code, block_size, reads);
    if (family == CodecFamily::kRS) rs_bytes = s.repair_bytes;
    const double ratio =
        static_cast<double>(s.repair_bytes) / static_cast<double>(rs_bytes);
    bench::row("%8s | %14lld | %9.3fx | %12.3f | %s",
               erasure::family_name(family),
               static_cast<long long>(s.repair_bytes), ratio, s.degraded_ms,
               s.bytes_identical ? "yes" : "NO");
    csv_rows.push_back(
        {"testbed", erasure::family_name(family), testbed_code.n,
         testbed_code.k,
         erasure::make_codec(family, testbed_code.n, testbed_code.k)->alpha(),
         static_cast<double>(s.repair_bytes) / static_cast<double>(block_size),
         ratio, s.degraded_ms});
    if (!s.bytes_identical) all_identical = false;
    if (family == CodecFamily::kClay &&
        s.repair_bytes * 10 > rs_bytes * 6) {
      clay_testbed_ok = false;
    }
  }
  bench::note("Clay(14,10): (n-1) helpers ship block/q each -> 0.325x RS; "
              "Hitchhiker ships half-blocks -> 0.7x; LRC reads its local "
              "group");

  if (!csv_out.empty()) {
    CsvWriter csv(csv_out);
    if (!csv.ok()) {
      std::fprintf(stderr, "error: cannot open %s: %s\n", csv_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    csv.row("section,family,n,k,alpha,repair_blocks,ratio_vs_rs,"
            "degraded_ms\n");
    for (const auto& r : csv_rows) {
      csv.row("%s,%s,%d,%d,%d,%.4f,%.4f,%.4f\n", r.section.c_str(),
              r.family.c_str(), r.n, r.k, r.alpha, r.repair_blocks,
              r.ratio_vs_rs, r.degraded_ms);
    }
    if (!csv.close()) {
      std::fprintf(stderr, "error: writing %s failed: %s\n", csv_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    bench::note("wrote " + csv_out);
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: degraded read returned corrupted bytes\n");
    return 1;
  }
  if (!clay_testbed_ok) {
    std::fprintf(stderr,
                 "FAIL: Clay testbed repair exceeds 0.6x RS network bytes\n");
    return 1;
  }
  return 0;
}
