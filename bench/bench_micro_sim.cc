// Microbenchmarks of the discrete-event substrate: raw event throughput of
// the engine and flow churn in the max-min network model.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sim/network.h"

namespace {

using namespace ear;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

void BM_NetworkFlowChurn(benchmark::State& state) {
  // Continuously maintain `concurrency` random transfers; measures the cost
  // of the max-min recompute at each start/finish.
  const int concurrency = static_cast<int>(state.range(0));
  const Topology topo(20, 20);
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network net(engine, topo, sim::NetConfig{});
    Rng rng(5);
    int completed = 0;
    std::function<void()> feed = [&] {
      const auto src = static_cast<NodeId>(rng.uniform(400));
      auto dst = static_cast<NodeId>(rng.uniform(400));
      if (dst == src) dst = (dst + 1) % 400;
      net.start_transfer(src, dst, 64_MB, [&] {
        ++completed;
        if (completed < 400) feed();
      });
    };
    for (int i = 0; i < concurrency; ++i) feed();
    engine.run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 400);
}
BENCHMARK(BM_NetworkFlowChurn)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
