// Microbenchmarks of the runtime-dispatched GF(2^8) kernel layer: MB/s per
// kernel per length for mul_add / mul_assign / xor_add and the multi-source
// sweep, across L1/L2/LLC/DRAM-resident buffer sizes — the numbers behind
// the ThrottleConfig::pipeline_chunk (Transport::preferred_chunk) tuning.
//
// Speaks the scenario-bench CLI via the bench_micro_erasure custom-main
// pattern (--smoke, --csv-out <path>), plus a CI gate:
//   --check-speedup   times 64 KiB mul_add per kernel without
//                     google-benchmark and exits non-zero unless the best
//                     non-scalar kernel is >= 2x scalar (the full-bench
//                     target is >= 5x on AVX2 hardware; 2x is the floor so
//                     throttled CI runners don't flake).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gf256/gf256.h"
#include "gf256/kernel.h"

namespace {

using namespace ear;

std::vector<uint8_t> random_bytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(256));
  return out;
}

constexpr size_t kLens[] = {4096, 65536, 262144, 1 << 20};

void register_kernel_benchmarks() {
  for (const gf::GfKernel* k : gf::compiled_kernels()) {
    const std::string name = k->name;
    for (const size_t len : kLens) {
      const std::string suffix = name + "/" + std::to_string(len);
      benchmark::RegisterBenchmark(
          ("BM_KernelMulAdd/" + suffix).c_str(),
          [k, len](benchmark::State& state) {
            const auto src = random_bytes(len, 1);
            auto dst = random_bytes(len, 2);
            for (auto _ : state) {
              k->mul_add(0x53, src.data(), dst.data(), len);
              benchmark::DoNotOptimize(dst.data());
            }
            state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                    static_cast<int64_t>(len));
          });
      benchmark::RegisterBenchmark(
          ("BM_KernelMulAssign/" + suffix).c_str(),
          [k, len](benchmark::State& state) {
            const auto src = random_bytes(len, 3);
            auto dst = random_bytes(len, 4);
            for (auto _ : state) {
              k->mul_assign(0x8e, src.data(), dst.data(), len);
              benchmark::DoNotOptimize(dst.data());
            }
            state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                    static_cast<int64_t>(len));
          });
      benchmark::RegisterBenchmark(
          ("BM_KernelXorAdd/" + suffix).c_str(),
          [k, len](benchmark::State& state) {
            const auto src = random_bytes(len, 5);
            auto dst = random_bytes(len, 6);
            for (auto _ : state) {
              k->xor_add(src.data(), dst.data(), len);
              benchmark::DoNotOptimize(dst.data());
            }
            state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                    static_cast<int64_t>(len));
          });
      // The whole-row sweep the encoders actually run: 10 sources (an RS
      // k=10 parity row) accumulated into one destination window.
      benchmark::RegisterBenchmark(
          ("BM_KernelMulAddMulti10/" + suffix).c_str(),
          [k, len](benchmark::State& state) {
            constexpr size_t kSrc = 10;
            std::vector<std::vector<uint8_t>> pool;
            std::vector<const uint8_t*> srcs;
            std::vector<uint8_t> coeffs;
            for (size_t j = 0; j < kSrc; ++j) {
              pool.push_back(random_bytes(len, 10 + j));
              srcs.push_back(pool.back().data());
              coeffs.push_back(static_cast<uint8_t>(7 * j + 3));
            }
            std::vector<uint8_t> dst(len);
            for (auto _ : state) {
              k->mul_add_multi(dst.data(), srcs.data(), coeffs.data(), kSrc,
                               len, /*accumulate=*/false);
              benchmark::DoNotOptimize(dst.data());
            }
            state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                    static_cast<int64_t>(len * kSrc));
          });
    }
  }
}

// ---- --check-speedup: the CI gate, no google-benchmark involved ----------

// MB/s of 64 KiB mul_add on `k`: batches double until one takes >= 25 ms,
// best of three batches wins (rejects scheduler noise on shared runners).
double measure_mul_add_mb_s(const gf::GfKernel& k) {
  constexpr size_t kLen = 64 * 1024;
  const auto src = random_bytes(kLen, 21);
  auto dst = random_bytes(kLen, 22);
  using Clock = std::chrono::steady_clock;
  int iters = 16;
  double best = 0;
  for (int rep = 0; rep < 8; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      k.mul_add(0x53, src.data(), dst.data(), kLen);
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (secs < 0.025) {
      iters *= 2;
      --rep;  // calibration pass, not a sample
      continue;
    }
    const double mb_s =
        static_cast<double>(kLen) * iters / secs / (1000.0 * 1000.0);
    if (mb_s > best) best = mb_s;
  }
  return best;
}

int run_check_speedup() {
  const auto kernels = gf::compiled_kernels();
  const gf::GfKernel& scalar = *kernels.back();
  const double scalar_mb_s = measure_mul_add_mb_s(scalar);
  std::printf("kernel      64KiB mul_add MB/s   vs scalar\n");
  std::printf("%-10s  %18.1f   %8.2fx\n", scalar.name, scalar_mb_s, 1.0);
  if (kernels.size() == 1) {
    std::printf("only the scalar kernel is compiled on this platform; "
                "speedup gate passes vacuously\n");
    return 0;
  }
  bool ok = false;
  for (const gf::GfKernel* k : kernels) {
    if (k == &scalar) continue;
    const double mb_s = measure_mul_add_mb_s(*k);
    const double ratio = mb_s / scalar_mb_s;
    std::printf("%-10s  %18.1f   %8.2fx\n", k->name, mb_s, ratio);
    if (ratio >= 2.0) ok = true;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: no SIMD kernel reached 2x scalar on 64 KiB mul_add\n");
    return 1;
  }
  std::printf("OK: best SIMD kernel >= 2x scalar\n");
  return 0;
}

}  // namespace

// Custom main (bench_micro_erasure pattern): --smoke and --csv-out are
// rewritten as native google-benchmark flags; --check-speedup short-circuits
// into the manual gate above.
int main(int argc, char** argv) {
  std::vector<std::string> translated;
  translated.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-speedup") == 0) {
      return run_check_speedup();
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      translated.emplace_back("--benchmark_min_time=0.01");
    } else if (std::strcmp(argv[i], "--csv-out") == 0 && i + 1 < argc) {
      translated.emplace_back(std::string("--benchmark_out=") + argv[++i]);
      translated.emplace_back("--benchmark_out_format=csv");
    } else {
      translated.emplace_back(argv[i]);
    }
  }
  std::vector<char*> args;
  for (auto& s : translated) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  register_kernel_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
