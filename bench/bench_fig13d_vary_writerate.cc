// Figure 13(d), Experiment B.2: normalized EAR/RR throughput vs the write
// request arrival rate.
//
// Paper expectation: a higher write rate squeezes effective bandwidth and
// raises the encoding gain (to ~89% at 4 req/s); write gain stays 25-28%.
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 5));

  bench::RatioCsv csv(flags);

  bench::header("Figure 13(d)",
                "EAR/RR normalized throughput vs write request rate");
  bench::print_ratio_header();
  for (const double rate : {1.0, 2.0, 3.0, 4.0}) {
    auto cfg = bench::default_b2_config(flags);
    cfg.write_rate = rate;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f req/s", rate);
    const auto samples = bench::run_pairs(cfg, runs);
    bench::print_ratio_row(label, samples);
    csv.add("vary_writerate", label, samples);
  }
  bench::note("paper: encode gain rises to 89.1% at 4 req/s");
  return csv.close();
}
