// Figure 13(f), Experiment B.2: normalized EAR/RR throughput vs the number
// of replicas per block, each replica in its own rack.
//
// Paper expectation: the encoding gain stays ~70%; the write gain shrinks
// from ~35% (2 replicas) to ~2.5% (8 replicas) since replication traffic
// dominates and RR downloads relatively less during encoding.
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 5));

  bench::RatioCsv csv(flags);

  bench::header("Figure 13(f)",
                "EAR/RR normalized throughput vs replication factor "
                "(one replica per rack)");
  bench::print_ratio_header();
  for (const int r : {2, 3, 4, 6, 8}) {
    auto cfg = bench::default_b2_config(flags);
    cfg.placement.replication = r;
    cfg.placement.one_replica_per_rack = true;
    const std::string label = "r=" + std::to_string(r);
    const auto samples = bench::run_pairs(cfg, runs);
    bench::print_ratio_row(label, samples);
    csv.add("vary_replicas", label, samples);
  }
  bench::note("paper: encode gain ~70% across r; write gain 34.7% -> 2.5%");
  return csv.close();
}
