// Extension bench: NameNode namespace scalability under lock striping.
//
// Measures aggregate client throughput (write + read + encode + replicate
// ops/s) against a MiniCfs while one scanner thread continuously takes
// namespace_snapshot() — the access pattern of RepairManager scans and the
// reliability sampler.  Run at --shards 1 the namespace degenerates to the
// old single-mutex NameNode: every snapshot copy holds the only lock and
// stalls all point ops for its full duration.  With striping the snapshot
// releases each shard right after copying it, so point ops on other shards
// proceed.  That contrast — not core counts — is what this bench isolates,
// so it is meaningful even on a single-core host.
//
//   ./bench_ext_namenode                # full sweep, shards 1 vs 16
//   ./bench_ext_namenode --shards 8 --threads 1,4 --secs 0.5
//   ./bench_ext_namenode --smoke        # tiny run for sanitizer CI
//   ./bench_ext_namenode --csv-out namenode.csv
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cfs/minicfs.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/rng.h"

namespace {

using namespace ear;

struct TrialResult {
  int threads = 0;
  int shards = 0;
  int64_t ops = 0;        // aggregate client ops completed
  int64_t snapshots = 0;  // snapshots the scanner completed
  double secs = 0;
  // Worst single client op, seconds.  A point op that collides with an
  // in-flight snapshot waits for the whole namespace copy under a single
  // mutex, but only for one shard's slice under striping — this is the
  // stall bound striping actually buys, and it shows even on one core.
  double max_stall_s = 0;
  double ops_per_s() const { return secs > 0 ? ops / secs : 0; }
};

cfs::CfsConfig trial_config(int shards) {
  cfs::CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 2;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 1_KB;
  cfg.seed = 33;
  cfg.namespace_shards = shards;
  return cfg;
}

TrialResult run_trial(int threads, int shards, double secs, int preload) {
  const cfs::CfsConfig cfg = trial_config(shards);
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::MiniCfs cfs(cfg, std::make_unique<cfs::InstantTransport>(topo));
  const int node_count = topo.node_count();

  const std::vector<uint8_t> payload(static_cast<size_t>(cfg.block_size), 7);
  std::vector<BlockId> blocks;
  blocks.reserve(static_cast<size_t>(preload));
  for (int i = 0; i < preload; ++i) {
    blocks.push_back(cfs.write_block(payload, i % node_count));
  }

  std::mutex claim_mu;
  std::set<StripeId> claimed;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_ops{0};
  std::mutex stall_mu;
  double max_stall = 0;

  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(100 + t));
      int64_t ops = 0;
      double worst = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t dice = rng.uniform(32);
        const auto op_start = std::chrono::steady_clock::now();
        try {
          if (dice == 0) {
            cfs.write_block(payload,
                            static_cast<NodeId>(rng.uniform(
                                static_cast<uint64_t>(node_count))));
          } else if (dice == 1) {
            // Claim one sealed stripe and encode it.
            StripeId target = kInvalidStripe;
            {
              std::lock_guard<std::mutex> lock(claim_mu);
              for (const StripeId s : cfs.sealed_stripes()) {
                if (claimed.insert(s).second) {
                  target = s;
                  break;
                }
              }
            }
            if (target != kInvalidStripe) cfs.encode_stripe(target);
          } else if (dice == 2) {
            const BlockId b = blocks[rng.index(blocks.size())];
            cfs.replicate_block(
                b, static_cast<NodeId>(
                       rng.uniform(static_cast<uint64_t>(node_count))));
          } else {
            const BlockId b = blocks[rng.index(blocks.size())];
            cfs.read_block(
                b, static_cast<NodeId>(
                       rng.uniform(static_cast<uint64_t>(node_count))));
          }
          ++ops;
        } catch (const std::runtime_error&) {
          // encode raced a not-yet-landed store / replicate hit its own
          // target — both benign; the op simply does not count
        }
        // Only point ops bound the stall claim: writes and encodes do real
        // data-path work whose duration is not a lock artifact.
        if (dice >= 2) {
          const double took = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - op_start)
                                  .count();
          if (took > worst) worst = took;
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(stall_mu);
      if (worst > max_stall) max_stall = worst;
    });
  }

  // The scanner models repair-scan / reliability-sampling pressure: with a
  // single shard each snapshot copy stalls every client op.
  std::atomic<int64_t> snapshots{0};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = cfs.namespace_snapshot();
      (void)snap;
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true);
  for (auto& t : clients) t.join();
  scanner.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  TrialResult r;
  r.threads = threads;
  r.shards = shards;
  r.ops = total_ops.load();
  r.snapshots = snapshots.load();
  r.secs = elapsed;
  r.max_stall_s = max_stall;
  return r;
}

std::vector<int> parse_thread_list(const std::string& spec) {
  std::vector<int> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.get_bool("smoke");
  const int shards = static_cast<int>(
      flags.get_int("shards", cfs::NamespaceShards::kDefaultShards));
  const double secs = flags.get_double("secs", smoke ? 0.05 : 1.0);
  const int preload = static_cast<int>(
      flags.get_int("preload", smoke ? 64 : 512));
  const std::vector<int> thread_counts = parse_thread_list(
      flags.get_string("threads", smoke ? "1,2" : "1,2,4,8,16"));
  const std::string csv_path = flags.get_string("csv-out");

  bench::header("ext-namenode",
                "NameNode namespace throughput: lock striping vs single mutex");
  bench::note("clients do write/read/encode/replicate; one scanner thread "
              "loops namespace_snapshot() (repair-scan pressure)");
  bench::note("shards=1 is the old single-mutex NameNode baseline");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("threads,shards,ops,snapshots,secs,ops_per_s,max_stall_ms\n");
  }

  bench::row("%8s %8s %12s %10s %12s %9s %10s %12s", "threads", "shards",
             "ops", "snapshots", "ops/s", "speedup", "stall_ms",
             "stall_gain");
  for (const int t : thread_counts) {
    const TrialResult base = run_trial(t, 1, secs, preload);
    const TrialResult striped = run_trial(t, shards, secs, preload);
    for (const TrialResult& r : {base, striped}) {
      const double speedup =
          base.ops_per_s() > 0 ? r.ops_per_s() / base.ops_per_s() : 0;
      const double stall_gain =
          r.max_stall_s > 0 ? base.max_stall_s / r.max_stall_s : 0;
      bench::row("%8d %8d %12lld %10lld %12.0f %8.2fx %10.3f %11.2fx",
                 r.threads, r.shards, static_cast<long long>(r.ops),
                 static_cast<long long>(r.snapshots), r.ops_per_s(), speedup,
                 r.max_stall_s * 1e3, stall_gain);
      if (!csv_path.empty()) {
        csv.row("%d,%d,%lld,%lld,%.4f,%.0f,%.3f\n", r.threads, r.shards,
                static_cast<long long>(r.ops),
                static_cast<long long>(r.snapshots), r.secs, r.ops_per_s(),
                r.max_stall_s * 1e3);
      }
    }
  }
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
