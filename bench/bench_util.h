// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (a) a header describing the experiment and the paper
// item it regenerates, (b) the measured series in a fixed-width table, and
// (c) where applicable the paper's qualitative expectation, so that
// EXPERIMENTS.md can be checked against raw output.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "common/flags.h"

namespace ear::bench {

inline void header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void note(const std::string& text) {
  std::printf("  # %s\n", text.c_str());
}

}  // namespace ear::bench
