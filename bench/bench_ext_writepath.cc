// Extension experiment: synchronous (write-path) vs asynchronous encoding —
// the trade-off that motivates the paper's problem setting (§I: CFSes
// replicate first and encode later to keep writes fast and reads load-
// balanced, at the cost of the conversion the paper optimizes).
//
// Same data, two pipelines, on the rate-limited testbed:
//   async: write k blocks with 3-way replication (client-visible), then the
//          background encoding pass (EAR-placed, core-rack encoded);
//   sync:  the client computes parity and pushes all n blocks directly.
//
// Reported: client-visible write time, background work, and total bytes
// moved per stripe.
#include <chrono>
#include <memory>

#include "bench/bench_util.h"
#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/flags.h"
#include "common/rng.h"
#include "placement/replica_layout.h"

int main(int argc, char** argv) {
  using namespace ear;
  using Clock = std::chrono::steady_clock;
  const FlagParser flags(argc, argv);
  const int stripes = static_cast<int>(flags.get_int("stripes", 8));

  cfs::CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = true;
  cfg.block_size = static_cast<Bytes>(flags.get_int("block-bytes", 1_MB));
  cfg.seed = 3;

  cfs::ThrottleConfig throttle;
  throttle.node_bw = flags.get_double("node-bw", 10e6);
  throttle.rack_uplink_bw = throttle.node_bw;
  throttle.disk_bw = 13e6;
  throttle.chunk_size = 64_KB;

  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  Rng rng(9);
  std::vector<std::vector<uint8_t>> payloads(
      static_cast<size_t>(cfg.placement.code.k));
  for (auto& p : payloads) {
    p.resize(static_cast<size_t>(cfg.block_size));
    for (auto& b : p) b = static_cast<uint8_t>(rng.uniform(256));
  }

  bench::header("Extension: write-path vs asynchronous encoding",
                "client latency vs background work, per stripe");

  // ---- asynchronous pipeline ------------------------------------------------
  double async_write_s, async_encode_s;
  int64_t async_bytes;
  {
    cfs::MiniCfs cluster(
        cfg, std::make_unique<cfs::ThrottledTransport>(topo, throttle));
    const auto t0 = Clock::now();
    while (static_cast<int>(cluster.sealed_stripes().size()) < stripes) {
      cluster.write_block(payloads[0], random_node(topo, rng));
    }
    async_write_s =
        std::chrono::duration<double>(Clock::now() - t0).count() / stripes;
    auto list = cluster.sealed_stripes();
    list.resize(static_cast<size_t>(stripes));
    cfs::RaidNode raid(cluster, 12);
    const auto report = raid.encode_stripes(list);
    async_encode_s = report.duration_s / stripes;
    async_bytes = (cluster.transport().cross_rack_bytes() +
                   cluster.transport().intra_rack_bytes()) /
                  stripes;
  }

  // ---- synchronous pipeline -------------------------------------------------
  double sync_write_s;
  int64_t sync_bytes;
  {
    cfs::MiniCfs cluster(
        cfg, std::make_unique<cfs::ThrottledTransport>(topo, throttle));
    std::vector<std::span<const uint8_t>> views(payloads.begin(),
                                                payloads.end());
    const auto t0 = Clock::now();
    for (int s = 0; s < stripes; ++s) {
      cluster.write_encoded_stripe(views, random_node(topo, rng));
    }
    sync_write_s =
        std::chrono::duration<double>(Clock::now() - t0).count() / stripes;
    sync_bytes = (cluster.transport().cross_rack_bytes() +
                  cluster.transport().intra_rack_bytes()) /
                 stripes;
  }

  const int k = cfg.placement.code.k;
  bench::row("%-28s | %14s | %16s | %16s | %14s", "pipeline",
             "per-block lat.", "stripe write s", "background s",
             "bytes moved");
  bench::row("%-28s | %12.3f s | %16.2f | %16.2f | %11.1f MB",
             "replicate, encode later", async_write_s / k, async_write_s,
             async_encode_s, async_bytes / 1e6);
  bench::row("%-28s | %12.3f s | %16.2f | %16.2f | %11.1f MB",
             "erasure-code on write", sync_write_s, sync_write_s, 0.0,
             sync_bytes / 1e6);
  bench::note("sync must buffer a full stripe before any block is durable: "
              "its per-block client latency is the whole-stripe push");
  bench::note("async keeps client writes cheap and defers the conversion "
              "cost (which EAR then minimizes); sync moves fewer bytes "
              "overall but serializes n pushes through the writer");
  return 0;
}
