// Observability wiring for the bench binaries.
//
//   --trace-out=<path>    enable tracing and write a Chrome trace_event JSON
//                         (load in chrome://tracing or https://ui.perfetto.dev)
//   --metrics-out=<path>  dump the metrics registry; ".txt" selects the plain
//                         text format, anything else gets JSON
//
// Both default off, so an unflagged bench run pays only the disabled-path
// cost (one relaxed atomic load per instrumentation site).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/flags.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace ear::bench {

struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;
};

// Parses the obs flags and, if any output was requested, enables the
// corresponding subsystems before the workload starts.
inline ObsOutputs obs_from_flags(const FlagParser& flags) {
  ObsOutputs out;
  out.trace_path = flags.get_string("trace-out");
  out.metrics_path = flags.get_string("metrics-out");
  obs::Config cfg;
  cfg.trace = !out.trace_path.empty();
  cfg.metrics = cfg.trace || !out.metrics_path.empty();
  if (cfg.metrics || cfg.trace) obs::init(cfg);
  return out;
}

// Writes the requested dumps.  Returns 0 on success, 1 on I/O failure with a
// strerror(errno) diagnostic on stderr — benches return this from main so a
// failed export fails the run instead of being silently dropped.
inline int obs_export(const ObsOutputs& out) {
  int rc = 0;
  if (!out.trace_path.empty() && !obs::write_chrome_trace(out.trace_path)) {
    std::fprintf(stderr, "error: cannot write trace %s: %s\n",
                 out.trace_path.c_str(), std::strerror(errno));
    rc = 1;
  }
  if (!out.metrics_path.empty()) {
    const bool text =
        out.metrics_path.size() > 4 &&
        out.metrics_path.compare(out.metrics_path.size() - 4, 4, ".txt") == 0;
    const bool ok = text ? obs::write_metrics_text(out.metrics_path)
                         : obs::write_metrics_json(out.metrics_path);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write metrics %s: %s\n",
                   out.metrics_path.c_str(), std::strerror(errno));
      rc = 1;
    }
  }
  return rc;
}

}  // namespace ear::bench
