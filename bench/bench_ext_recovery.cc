// Extension experiment (paper §III-D discussion + related work): recovery
// traffic after a single node failure.
//
// Part 1 measures, on actual EAR placements, how many of the k blocks read
// to repair one lost block must cross racks as the c parameter grows —
// the trade-off §III-D describes qualitatively (analysis predicts k - c).
//
// Part 2 compares Reed-Solomon repair against Local Repairable Codes
// (Azure-style LRC, the related-work alternative): blocks read, bytes read
// per repaired block, and storage overhead.
#include <cerrno>
#include <cstring>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/flags.h"
#include "erasure/lrc.h"
#include "placement/ear.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int stripes = static_cast<int>(flags.get_int("stripes", 200));
  const std::string csv_out = flags.get_string("csv-out", "");

  bench::header("Extension: recovery traffic",
                "cross-rack reads to repair one lost block");

  struct CrossRackRow {
    int c;
    int target_racks;
    double measured;
    int predicted;
  };
  std::vector<CrossRackRow> csv_rows;

  // ---- Part 1: EAR placements, varying c -----------------------------------
  const Topology topo(20, 20);
  bench::row("%6s %6s | %22s | %10s", "c", "R'", "measured cross-rack reads",
             "k - c");
  for (const int c : {1, 2, 4}) {
    PlacementConfig cfg;
    cfg.code = CodeParams{14, 10};
    cfg.replication = 3;
    cfg.c = c;
    cfg.target_racks = c == 1 ? 0 : (14 + c - 1) / c;
    EncodingAwareReplication policy(topo, cfg, 77);
    BlockId next = 0;
    while (static_cast<int>(policy.sealed_stripes().size()) < stripes) {
      policy.place_block(next++, std::nullopt);
    }

    double cross_total = 0;
    int repairs = 0;
    for (const StripeId id : policy.sealed_stripes()) {
      const EncodePlan plan = policy.plan_encoding(id);
      std::vector<NodeId> nodes = plan.kept;
      nodes.insert(nodes.end(), plan.parity.begin(), plan.parity.end());

      // Fail stripe block 0; the repairing node sits in the rack holding
      // the most surviving blocks of the stripe.
      std::vector<int> rack_count(static_cast<size_t>(topo.rack_count()), 0);
      for (size_t i = 1; i < nodes.size(); ++i) {
        ++rack_count[static_cast<size_t>(topo.rack_of(nodes[i]))];
      }
      const auto best = static_cast<RackId>(std::distance(
          rack_count.begin(),
          std::max_element(rack_count.begin(), rack_count.end())));
      // k of the surviving blocks are read; those in `best` stay local.
      const int local = std::min(rack_count[static_cast<size_t>(best)], 10);
      cross_total += 10 - local;
      ++repairs;
    }
    bench::row("%6d %6d | %22.2f | %10d", c, cfg.target_racks,
               cross_total / repairs, 10 - c);
    csv_rows.push_back({c, cfg.target_racks, cross_total / repairs, 10 - c});
  }
  if (!csv_out.empty()) {
    CsvWriter csv(csv_out);
    if (!csv.ok()) {
      std::fprintf(stderr, "error: cannot open %s: %s\n", csv_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    csv.row("c,target_racks,mean_cross_rack_reads,predicted_k_minus_c\n");
    for (const auto& r : csv_rows) {
      csv.row("%d,%d,%.4f,%d\n", r.c, r.target_racks, r.measured, r.predicted);
    }
    if (!csv.close()) {
      std::fprintf(stderr, "error: writing %s failed: %s\n", csv_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    bench::note("wrote " + csv_out);
  }
  bench::note("analysis model: repairing node co-located with c surviving "
              "blocks -> k - c cross-rack reads");

  // ---- Part 2: RS vs LRC repair cost ---------------------------------------
  bench::header("Extension: LRC vs RS",
                "repair reads and storage overhead per code");
  bench::row("%-22s | %12s | %12s | %10s", "code", "blocks read",
             "read amplif.", "overhead");
  {
    const erasure::RSCode rs(16, 12);
    bench::row("%-22s | %12d | %11.1fx | %9.2fx", "RS(16,12)", rs.k(),
               static_cast<double>(rs.k()), 16.0 / 12.0);
    const erasure::LRCCode lrc(12, 2, 2);
    const auto plan = lrc.repair_plan(0);
    bench::row("%-22s | %12zu | %11.1fx | %9.2fx", "LRC(12,2,2) data blk",
               plan.size(), static_cast<double>(plan.size()),
               static_cast<double>(lrc.n()) / lrc.k());
    const auto gplan = lrc.repair_plan(lrc.n() - 1);
    bench::row("%-22s | %12zu | %11.1fx | %9.2fx", "LRC(12,2,2) global",
               gplan.size(), static_cast<double>(gplan.size()),
               static_cast<double>(lrc.n()) / lrc.k());
    const erasure::LRCCode lrc3(12, 3, 2);
    bench::row("%-22s | %12zu | %11.1fx | %9.2fx", "LRC(12,3,2) data blk",
               lrc3.repair_plan(0).size(),
               static_cast<double>(lrc3.repair_plan(0).size()),
               static_cast<double>(lrc3.n()) / lrc3.k());
  }
  bench::note("LRC halves repair reads at ~8% extra storage — the direction "
              "Azure/Facebook took, complementary to EAR");
  return 0;
}
