// Figure 10, Experiment A.3: impact of the placement policy on MapReduce
// *before* encoding.  Replays a SWIM-like synthetic workload of 50 jobs on
// input data placed with RR vs EAR, and prints the completed-jobs-vs-time
// curve for both.
//
// Paper expectation: the two curves nearly coincide — EAR does not hurt
// MapReduce on replicated data.
//   ./bench_fig10_mapreduce --csv-out fig10.csv
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "common/csv.h"
#include "mapred/mapreduce.h"
#include "mapred/swim.h"
#include "sim/network.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const bench::ObsOutputs obs_out = bench::obs_from_flags(flags);
  const int jobs = static_cast<int>(flags.get_int("jobs", 50));
  const int racks = static_cast<int>(flags.get_int("racks", 12));
  const int nodes_per_rack = static_cast<int>(flags.get_int("nodes-per-rack", 1));
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("completed,rr_finish_s,ear_finish_s\n");
  }

  bench::header("Figure 10",
                "completed MapReduce jobs vs time, SWIM-like workload");

  std::vector<std::vector<double>> finish(2);
  double locality[2] = {0, 0};
  for (const bool use_ear : {false, true}) {
    const Topology topo(racks, nodes_per_rack);
    sim::Engine engine;
    sim::NetConfig net;
    net.node_bw = gbps(1);
    net.rack_uplink_bw = gbps(1);
    sim::Network network(engine, topo, net);

    PlacementConfig pc;
    pc.code = CodeParams{10, 8};
    pc.replication = 2;
    auto policy = use_ear ? make_encoding_aware_replication(topo, pc, 5)
                          : make_random_replication(topo, pc, 5);

    mapred::MapReduceConfig mr_cfg;
    mr_cfg.block_size = 64_MB;
    mr_cfg.map_slots_per_node = 4;
    mapred::MapReduceCluster mr(engine, network, *policy, mr_cfg);

    mapred::SwimConfig swim;
    swim.jobs = jobs;
    swim.block_size = mr_cfg.block_size;
    for (const auto& job : mapred::generate_swim_workload(swim)) {
      mr.submit(job);
    }
    engine.run();

    int64_t local = 0, total = 0;
    for (const auto& r : mr.results()) {
      finish[use_ear ? 1 : 0].push_back(r.finish_time);
      local += r.data_local_maps;
      total += r.map_tasks;
    }
    locality[use_ear ? 1 : 0] =
        100.0 * static_cast<double>(local) / static_cast<double>(total);
    std::sort(finish[use_ear ? 1 : 0].begin(), finish[use_ear ? 1 : 0].end());
  }

  bench::row("%10s | %12s | %12s", "completed", "RR time (s)", "EAR time (s)");
  for (size_t i = 4; i < finish[0].size(); i += 5) {
    bench::row("%10zu | %12.1f | %12.1f", i + 1, finish[0][i], finish[1][i]);
  }
  if (!csv_path.empty()) {
    // Full completion curve, one row per job (stdout only shows every 5th).
    for (size_t i = 0; i < finish[0].size(); ++i) {
      csv.row("%zu,%.3f,%.3f\n", i + 1, finish[0][i], finish[1][i]);
    }
  }
  bench::row("makespan: RR %.1f s, EAR %.1f s (diff %+.1f%%)",
             finish[0].back(), finish[1].back(),
             100.0 * (finish[1].back() / finish[0].back() - 1.0));
  bench::row("data-local maps: RR %.1f%%, EAR %.1f%%", locality[0],
             locality[1]);
  bench::note("paper: RR and EAR show very similar completion curves");
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return bench::obs_export(obs_out);
}
