// Ablation studies of EAR's design choices (DESIGN.md "ablation" row):
//
//  (1) Core-rack scheduling (§IV-B JobTracker modifications): encode the
//      same EAR-placed stripes with encoders pinned to the core rack vs
//      scattered randomly.  Shows the locality machinery — not just the
//      placement — delivers the zero-cross-rack-download property.
//  (2) RR relocation cost (§II-B availability issue): simulate RR with the
//      BlockMover traffic it actually owes after encoding, vs the paper's
//      charitable no-relocation accounting, vs EAR (which owes none).
//  (3) The c trade-off (§III-D): larger c cuts cross-rack *recovery* traffic
//      (k - c blocks per repair) while reducing tolerated rack failures.
//   ./bench_ablation_ear --csv-out ablation.csv
// CSV is long-format (section,variant,metric,value): the three ablations
// measure different quantities, so one row per datum instead of one wide
// schema.
#include <cstdio>
#include <string>

#include "analysis/availability.h"
#include "bench/bench_util.h"
#include "bench/sweep_util.h"
#include "bench/testbed_util.h"
#include "common/csv.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("section,variant,metric,value\n");
  }
  const auto emit = [&](const char* section, const char* variant,
                        const char* metric, double value) {
    if (!csv_path.empty()) {
      csv.row("%s,%s,%s,%.4f\n", section, variant, metric, value);
    }
  };

  // ---------------- (1) core-rack scheduling --------------------------------
  bench::header("Ablation 1",
                "EAR with core-rack encoders vs scattered encoders (testbed)");
  {
    double thpt[2] = {0, 0};
    int64_t cross_dl[2] = {0, 0};
    for (const bool scatter : {false, true}) {
      auto params = bench::TestbedParams::from_flags(flags);
      auto testbed = bench::make_loaded_testbed(params, /*use_ear=*/true);
      cfs::RaidNode raid(*testbed.cfs, 12);
      const cfs::EncodeReport report =
          raid.encode_stripes(testbed.stripes, scatter);
      thpt[scatter ? 1 : 0] = report.throughput_mbps;
      cross_dl[scatter ? 1 : 0] = report.cross_rack_downloads;
    }
    bench::row("core-rack encoders: %8.1f MB/s, %3ld cross-rack downloads",
               thpt[0], static_cast<long>(cross_dl[0]));
    bench::row("scattered encoders: %8.1f MB/s, %3ld cross-rack downloads",
               thpt[1], static_cast<long>(cross_dl[1]));
    bench::row("scheduling alone is worth %+.1f%% encoding throughput",
               100.0 * (thpt[0] / thpt[1] - 1.0));
    emit("core_rack", "core", "throughput_mbps", thpt[0]);
    emit("core_rack", "core", "cross_rack_downloads",
         static_cast<double>(cross_dl[0]));
    emit("core_rack", "scattered", "throughput_mbps", thpt[1]);
    emit("core_rack", "scattered", "cross_rack_downloads",
         static_cast<double>(cross_dl[1]));
  }

  // ---------------- (2) RR relocation cost -----------------------------------
  bench::header("Ablation 2",
                "RR charged for post-encoding relocations (simulator)");
  {
    auto base = bench::default_b2_config(flags);
    base.seed = 3;
    base.use_ear = false;
    const sim::SimResult rr_free = sim::ClusterSim(base).run();
    auto charged = base;
    charged.simulate_relocation = true;
    const sim::SimResult rr_paid = sim::ClusterSim(charged).run();
    auto ear_cfg = base;
    ear_cfg.use_ear = true;
    ear_cfg.simulate_relocation = true;
    const sim::SimResult ear_run = sim::ClusterSim(ear_cfg).run();

    bench::row("%-34s | %10s | %12s | %11s", "variant", "enc MB/s",
               "relocations", "reloc bytes");
    bench::row("%-34s | %10.1f | %12ld | %9.1f GB",
               "RR, relocation ignored (paper)", rr_free.encode_throughput_mbps,
               static_cast<long>(rr_free.relocations),
               rr_free.relocation_bytes / 1e9);
    bench::row("%-34s | %10.1f | %12ld | %9.1f GB", "RR, relocation charged",
               rr_paid.encode_throughput_mbps,
               static_cast<long>(rr_paid.relocations),
               rr_paid.relocation_bytes / 1e9);
    bench::row("%-34s | %10.1f | %12ld | %9.1f GB", "EAR (owes none)",
               ear_run.encode_throughput_mbps,
               static_cast<long>(ear_run.relocations),
               ear_run.relocation_bytes / 1e9);
    bench::note("paper simulates RR without relocation, over-estimating it "
                "(§V-B); this quantifies by how much");
    const struct {
      const char* variant;
      const sim::SimResult* result;
    } rows[] = {{"rr_relocation_ignored", &rr_free},
                {"rr_relocation_charged", &rr_paid},
                {"ear", &ear_run}};
    for (const auto& r : rows) {
      emit("relocation", r.variant, "enc_throughput_mbps",
           r.result->encode_throughput_mbps);
      emit("relocation", r.variant, "relocations",
           static_cast<double>(r.result->relocations));
      emit("relocation", r.variant, "relocation_gb",
           r.result->relocation_bytes / 1e9);
    }
  }

  // ---------------- (3) c / recovery-traffic trade-off -----------------------
  bench::header("Ablation 3", "c parameter: fault tolerance vs repair traffic");
  {
    const int n = 14, k = 10;
    bench::row("%4s | %22s | %26s", "c", "tolerated rack failures",
               "cross-rack blocks per repair");
    for (const int c : {1, 2, 4}) {
      bench::row("%4d | %22d | %26d", c, (n - k) / c,
                 analysis::cross_rack_repair_blocks(k, c));
      const std::string variant = "c" + std::to_string(c);
      emit("c_tradeoff", variant.c_str(), "tolerated_rack_failures",
           static_cast<double>((n - k) / c));
      emit("c_tradeoff", variant.c_str(), "cross_rack_repair_blocks",
           static_cast<double>(analysis::cross_rack_repair_blocks(k, c)));
    }
    bench::note("paper §III-D: c > 1 trades rack fault tolerance for lower "
                "cross-rack recovery traffic");
  }
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
