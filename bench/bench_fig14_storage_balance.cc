// Figure 14, Experiment C.1: storage load balancing.  Places 10,000 blocks
// under RR and EAR on 20 racks x 20 nodes and prints the ranked per-rack
// share of replicas, averaged over independent runs.
//
// Paper expectation: both policies land between ~4.96% and ~5.05% per rack —
// EAR's constraints do not skew storage balance.
#include "analysis/balance.h"
#include "bench/bench_util.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int blocks = static_cast<int>(flags.get_int("blocks", 10000));
  const int runs = static_cast<int>(flags.get_int(
      "runs", flags.get_bool("paper-scale") ? 1000 : 30));

  bench::header("Figure 14", "ranked per-rack storage share, RR vs EAR");

  analysis::BalanceConfig rr_cfg;
  rr_cfg.use_ear = false;
  analysis::BalanceConfig ear_cfg;
  ear_cfg.use_ear = true;
  const auto rr = analysis::storage_share_by_rack(rr_cfg, blocks, runs);
  const auto ear_shares =
      analysis::storage_share_by_rack(ear_cfg, blocks, runs);

  bench::row("%6s | %10s | %10s", "rank", "RR %", "EAR %");
  for (size_t i = 0; i < rr.size(); ++i) {
    bench::row("%6zu | %10.3f | %10.3f", i + 1, rr[i], ear_shares[i]);
  }
  bench::row("spread: RR [%0.3f%%, %0.3f%%], EAR [%0.3f%%, %0.3f%%]",
             rr.back(), rr.front(), ear_shares.back(), ear_shares.front());
  bench::note("paper: both policies within ~4.96%-5.05% per rack");
  return 0;
}
