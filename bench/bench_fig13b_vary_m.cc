// Figure 13(b), Experiment B.2: normalized EAR/RR throughput vs n - k, with
// k = 10 fixed.
//
// Paper expectation: encoding gain stays roughly flat (~70%); the write gain
// shrinks as n - k grows (both policies pay for more parity uploads).
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 5));

  bench::RatioCsv csv(flags);

  bench::header("Figure 13(b)",
                "EAR/RR normalized throughput vs n-k (k=10)");
  bench::print_ratio_header();
  for (const int m : {2, 3, 4, 5, 6}) {
    auto cfg = bench::default_b2_config(flags);
    cfg.placement.code = CodeParams{10 + m, 10};
    const std::string label = "n-k=" + std::to_string(m);
    const auto samples = bench::run_pairs(cfg, runs);
    bench::print_ratio_row(label, samples);
    csv.add("vary_m", label, samples);
  }
  bench::note("paper: encode gain stable ~70%; write gain drops 33.9%->14.1%");
  return csv.close();
}
