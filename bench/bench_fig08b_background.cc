// Figure 8(b), Experiment A.1: encoding throughput of RR vs EAR under
// injected background traffic, (10,8) code.  The paper runs Iperf UDP
// between 6 machine pairs at 0..800 Mb/s of the 1 Gb/s links; here six
// background streams each consume the same fraction of the emulated link
// bandwidth.
//
// Paper expectation: EAR's relative gain grows as the effective bandwidth
// shrinks — 57.5% with no injection up to ~120% at 800 Mb/s.
//   ./bench_fig08b_background --csv-out fig08b.csv
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/testbed_util.h"
#include "cfs/workload.h"
#include "common/csv.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 1));
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    csv.row("injected_fraction,runs,rr_mbps,ear_mbps,gain_pct\n");
  }

  bench::header("Figure 8(b)",
                "encoding throughput vs injected background traffic, (10,8)");
  bench::row("%12s | %12s | %12s | %8s", "injected", "RR MB/s", "EAR MB/s",
             "gain");

  for (const double fraction : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8}) {
    Summary rr, ear_s;
    for (int run = 0; run < runs; ++run) {
      for (const bool use_ear : {false, true}) {
        auto params = bench::TestbedParams::from_flags(flags);
        params.seed = static_cast<uint64_t>(run * 2 + 1);
        auto testbed = bench::make_loaded_testbed(params, use_ear);

        // Six sender/receiver pairs as in the paper.
        std::vector<std::pair<NodeId, NodeId>> pairs;
        for (NodeId i = 0; i < 12; i += 2) pairs.emplace_back(i, i + 1);
        cfs::BackgroundTraffic background(
            *testbed.cfs, pairs, fraction * params.throttle.node_bw);
        if (fraction > 0) background.start();

        cfs::RaidNode raid(*testbed.cfs, 12);
        const cfs::EncodeReport report =
            raid.encode_stripes(testbed.stripes);
        if (fraction > 0) background.stop();
        (use_ear ? ear_s : rr).add(report.throughput_mbps);
      }
    }
    bench::row("%10.0f%% | %12.1f | %12.1f | %+6.1f%%", fraction * 100,
               rr.mean(), ear_s.mean(),
               100.0 * (ear_s.mean() / rr.mean() - 1.0));
    if (!csv_path.empty()) {
      csv.row("%.2f,%d,%.2f,%.2f,%.2f\n", fraction, runs, rr.mean(),
              ear_s.mean(), 100.0 * (ear_s.mean() / rr.mean() - 1.0));
    }
  }
  bench::note("paper: gain rises with injected traffic (57.5% -> 119.7%)");
  if (!csv_path.empty() && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return 0;
}
