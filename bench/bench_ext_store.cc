// Persistent block-store benchmark: sustained write throughput (mem vs
// mmap, fsync-per-commit vs flush-on-close), cold-start vs warm-cache read
// throughput, recovery-delta vs full-rebuild repair traffic, and two smoke
// modes:
//
//   --crash-smoke   fork a writer, SIGKILL it mid-commit, reopen and verify
//                   every committed block byte-identical (CI crash job;
//                   exits non-zero on any lost or corrupt block)
//   --paper-scale   write a dataset larger than --ram-budget-mb and read it
//                   back sampled, proving the store serves datasets that do
//                   not fit the RAM budget (exits non-zero otherwise)
//
//   ./bench_ext_store --blocks 128 --block-kb 256 --csv-out store.csv
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cfs/minicfs.h"
#include "common/csv.h"
#include "common/flags.h"
#include "store/mem_store.h"
#include "store/mmap_store.h"

namespace {

namespace fs = std::filesystem;
using namespace ear;
using datapath::BlockBuffer;
using store::MmapBlockStore;
using store::MmapStoreOptions;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<uint8_t> pattern(int64_t block, size_t size) {
  std::vector<uint8_t> out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>((static_cast<uint64_t>(block) * 31 + i) &
                                  0xFF);
  }
  return out;
}

double mb(double bytes) { return bytes / (1024.0 * 1024.0); }

int64_t max_rss_mb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return ru.ru_maxrss / 1024;  // Linux reports KB
}

struct Ctx {
  std::string root;
  int64_t blocks = 0;
  int64_t block_bytes = 0;
  CsvWriter* csv = nullptr;
  bool csv_on = false;
};

void emit(const Ctx& ctx, const char* section, const char* label,
          double value, const char* unit) {
  if (ctx.csv_on) {
    ctx.csv->row("%s,%s,%lld,%lld,%.3f,%s\n", section, label,
                 static_cast<long long>(ctx.blocks),
                 static_cast<long long>(ctx.block_bytes), value, unit);
  }
}

// ---- sustained write throughput -----------------------------------------

void bench_writes(const Ctx& ctx) {
  bench::header("Store writes",
                "sustained put() throughput, mem vs mmap backends");
  bench::row("%-28s | %10s | %10s", "backend", "MB/s", "seconds");

  const auto run = [&](const char* label,
                       const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double secs = seconds_since(start);
    const double total = static_cast<double>(ctx.blocks * ctx.block_bytes);
    bench::row("%-28s | %10.1f | %10.3f", label, mb(total) / secs, secs);
    emit(ctx, "write", label, mb(total) / secs, "MB/s");
  };

  run("mem", [&] {
    store::MemBlockStore s;
    for (int64_t b = 0; b < ctx.blocks; ++b) {
      s.put(b, BlockBuffer::take(
                   pattern(b, static_cast<size_t>(ctx.block_bytes))));
    }
  });
  run("mmap fsync-per-commit", [&] {
    const std::string dir = ctx.root + "/write-commit";
    fs::remove_all(dir);
    MmapBlockStore s(dir);
    for (int64_t b = 0; b < ctx.blocks; ++b) {
      s.put(b, BlockBuffer::take(
                   pattern(b, static_cast<size_t>(ctx.block_bytes))));
    }
  });
  run("mmap flush-on-close", [&] {
    const std::string dir = ctx.root + "/write-flush";
    fs::remove_all(dir);
    MmapStoreOptions options;
    options.sync = MmapStoreOptions::SyncPolicy::kOnFlush;
    MmapBlockStore s(dir, options);
    for (int64_t b = 0; b < ctx.blocks; ++b) {
      s.put(b, BlockBuffer::take(
                   pattern(b, static_cast<size_t>(ctx.block_bytes))));
    }
    s.flush();
  });
  bench::note("fsync-per-commit pays one segment + one manifest sync per "
              "block; flush-on-close batches both");
}

// ---- cold vs warm reads --------------------------------------------------

void bench_reads(const Ctx& ctx) {
  bench::header("Store reads",
                "mmap read throughput: replay+cold page cache vs warm");
  const std::string dir = ctx.root + "/reads";
  fs::remove_all(dir);
  {
    MmapStoreOptions options;
    options.sync = MmapStoreOptions::SyncPolicy::kOnFlush;
    MmapBlockStore s(dir, options);
    for (int64_t b = 0; b < ctx.blocks; ++b) {
      s.put(b, BlockBuffer::take(
                   pattern(b, static_cast<size_t>(ctx.block_bytes))));
    }
    s.flush();
  }

  const auto open_start = std::chrono::steady_clock::now();
  MmapBlockStore s(dir);
  const double open_secs = seconds_since(open_start);
  bench::row("replay-on-open: %.3f s (%lld blocks verified)", open_secs,
             static_cast<long long>(s.open_report().blocks_recovered));
  emit(ctx, "read", "replay-open", open_secs, "s");

  uint64_t sink = 0;  // consumed below so the reads cannot be elided
  const auto sweep = [&](const char* label) {
    const auto start = std::chrono::steady_clock::now();
    for (int64_t b = 0; b < ctx.blocks; ++b) {
      const auto buf = s.get(b);
      const uint8_t* data = buf->data();
      uint64_t acc = 0;
      for (size_t i = 0; i < buf->size(); i += 512) acc += data[i];
      sink += acc;
    }
    const double secs = seconds_since(start);
    const double total = static_cast<double>(ctx.blocks * ctx.block_bytes);
    bench::row("%-28s | %10.1f MB/s", label, mb(total) / secs);
    emit(ctx, "read", label, mb(total) / secs, "MB/s");
  };

  s.drop_page_cache();
  sweep("cold (page cache dropped)");
  sweep("warm (page cache hot)");
  if (sink == 0xDEADBEEFu) bench::note("(improbable checksum)");
  bench::note("cold models a restarted node's first sweep; warm is the "
              "steady state the PR 5 block cache sees");
}

// ---- recovery delta vs full rebuild -------------------------------------

std::unique_ptr<cfs::MiniCfs> make_cluster(cfs::CfsConfig cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));
}

void bench_recovery(const Ctx& ctx) {
  bench::header("Restart recovery",
                "repair traffic after a node restart: mmap replays its "
                "directory (delta repair) vs mem (full rebuild)");
  bench::row("%-28s | %12s | %12s | %12s", "backend", "recovered",
             "repaired", "repair MB");

  const auto scenario = [&](const char* label, bool mmap_backend) {
    cfs::CfsConfig cfg;
    cfg.racks = 6;
    cfg.nodes_per_rack = 3;
    cfg.placement.code = CodeParams{6, 4};
    cfg.placement.replication = 3;
    cfg.use_ear = true;
    cfg.block_size = 64_KB;
    cfg.seed = 99;
    if (mmap_backend) {
      cfg.store_backend = store::StoreBackend::kMmap;
      cfg.store_dir = ctx.root + "/recovery";
      fs::remove_all(cfg.store_dir);
    }
    auto cluster = make_cluster(cfg);
    for (int i = 0; i < 48; ++i) {
      cluster->write_block(
          pattern(i, static_cast<size_t>(cfg.block_size)));
    }
    NodeId victim = 0;
    for (NodeId n = 0; n < cfg.racks * cfg.nodes_per_rack; ++n) {
      if (cluster->blocks_stored_on(n) > cluster->blocks_stored_on(victim)) {
        victim = n;
      }
    }
    cluster->kill_node(victim);
    const auto report = cluster->restart_node(victim);
    const int64_t before = cluster->transport().cross_rack_bytes() +
                           cluster->transport().intra_rack_bytes();
    const auto recovery = cluster->restore_redundancy();
    const int64_t moved = cluster->transport().cross_rack_bytes() +
                          cluster->transport().intra_rack_bytes() - before;
    bench::row("%-28s | %12lld | %12lld | %12.2f", label,
               static_cast<long long>(report.blocks_recovered),
               static_cast<long long>(recovery.re_replicated +
                                      recovery.repaired),
               mb(static_cast<double>(moved)));
    emit(ctx, "recovery", label, mb(static_cast<double>(moved)), "MB");
    if (mmap_backend) {
      cluster.reset();
      fs::remove_all(cfg.store_dir);
    }
  };

  scenario("mmap (delta repair)", true);
  scenario("mem (full rebuild)", false);
  bench::note("the mmap node re-registers every surviving on-disk block, so "
              "redundancy repair moves ~0 bytes; the mem node lost all "
              "state and every block it held is re-replicated");
}

// ---- crash smoke (CI) ----------------------------------------------------

int crash_smoke(const Ctx& ctx) {
  bench::header("Crash smoke",
                "SIGKILL a fsync-per-commit writer, reopen, verify");
  int failures = 0;
  for (int round = 0; round < 3; ++round) {
    const std::string dir =
        ctx.root + "/crash-" + std::to_string(round);
    const std::string committed_log = dir + ".committed";
    fs::remove_all(dir);
    fs::remove(committed_log);
    fs::create_directories(dir);

    const pid_t child = fork();
    if (child < 0) {
      std::perror("fork");
      return 1;
    }
    if (child == 0) {
      try {
        MmapStoreOptions options;
        options.segment_bytes = 1_MB;
        MmapBlockStore s(dir, options);
        const int fd = ::open(committed_log.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd < 0) _exit(2);
        for (int64_t b = 0;; ++b) {
          s.put(b, BlockBuffer::take(pattern(b, 8192)));
          const std::string line = std::to_string(b) + "\n";
          if (::write(fd, line.data(), line.size()) !=
              static_cast<ssize_t>(line.size())) {
            _exit(3);
          }
          if (::fdatasync(fd) != 0) _exit(4);
        }
      } catch (...) {
        _exit(5);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(80 + 50 * round));
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      bench::row("round %d: writer exited early (status %d) — no crash to "
                 "test", round, status);
      ++failures;
      continue;
    }

    std::vector<int64_t> committed;
    {
      std::ifstream in(committed_log);
      int64_t b;
      while (in >> b) committed.push_back(b);
    }
    MmapBlockStore reopened(dir);
    int64_t verified = 0;
    for (const int64_t b : committed) {
      const auto buf = reopened.get(b);
      if (!buf || !(*buf == pattern(b, 8192))) {
        bench::row("round %d: committed block %lld LOST or corrupt", round,
                   static_cast<long long>(b));
        ++failures;
        continue;
      }
      ++verified;
    }
    bench::row("round %d: killed after %zu commits; %lld/%zu recovered "
               "byte-identical (torn tail: %lld B)",
               round, committed.size(), static_cast<long long>(verified),
               committed.size(),
               static_cast<long long>(
                   reopened.open_report().torn_bytes_truncated));
    fs::remove_all(dir);
    fs::remove(committed_log);
  }
  bench::note(failures == 0 ? "PASS: no committed block lost in any round"
                            : "FAIL: committed data lost");
  return failures == 0 ? 0 : 1;
}

// ---- paper-scale smoke ---------------------------------------------------

int paper_scale(const Ctx& ctx, int64_t ram_budget_mb) {
  bench::header("Paper scale",
                "dataset larger than the RAM budget completes");
  const int64_t block_bytes = 4_MB;
  const int64_t target_bytes = ram_budget_mb * 2 * 1024 * 1024;
  const int64_t blocks = (target_bytes + block_bytes - 1) / block_bytes;
  const std::string dir = ctx.root + "/paper-scale";
  fs::remove_all(dir);

  MmapStoreOptions options;
  options.sync = MmapStoreOptions::SyncPolicy::kOnFlush;
  MmapBlockStore s(dir, options);
  const auto start = std::chrono::steady_clock::now();
  for (int64_t b = 0; b < blocks; ++b) {
    s.put(b, BlockBuffer::take(
                 pattern(b, static_cast<size_t>(block_bytes))));
    // Keep resident size bounded: committed pages are reclaimable, this
    // just asks for it eagerly so maxrss reflects the store, not the page
    // cache.
    if (b % 64 == 63) {
      s.flush();
      s.drop_page_cache();
    }
  }
  s.flush();
  const double write_secs = seconds_since(start);

  // Sampled verification across the whole dataset.
  s.drop_page_cache();
  int64_t checked = 0;
  for (int64_t b = 0; b < blocks; b += 7) {
    const auto buf = s.get(b);
    if (!buf || !(*buf == pattern(b, static_cast<size_t>(block_bytes)))) {
      bench::row("block %lld mismatch", static_cast<long long>(b));
      return 1;
    }
    ++checked;
  }

  const int64_t dataset_mb = blocks * block_bytes / (1024 * 1024);
  const int64_t rss_mb = max_rss_mb();
  bench::row("dataset %lld MB (budget %lld MB), wrote in %.1f s, verified "
             "%lld sampled blocks, max RSS %lld MB",
             static_cast<long long>(dataset_mb),
             static_cast<long long>(ram_budget_mb), write_secs,
             static_cast<long long>(checked), static_cast<long long>(rss_mb));
  emit(ctx, "paper-scale", "dataset", static_cast<double>(dataset_mb), "MB");
  emit(ctx, "paper-scale", "max-rss", static_cast<double>(rss_mb), "MB");
  fs::remove_all(dir);
  if (dataset_mb <= ram_budget_mb) {
    bench::note("FAIL: dataset does not exceed the RAM budget");
    return 1;
  }
  bench::note("PASS: dataset exceeds the RAM budget and every sampled "
              "block reads back byte-identical");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  Ctx ctx;
  ctx.blocks = flags.get_int("blocks", 128);
  ctx.block_bytes = flags.get_int("block-kb", 256) * 1024;
  ctx.root = flags.get_string(
      "dir", (fs::temp_directory_path() / "ear-store-bench").string());
  const std::string csv_path = flags.get_string("csv-out");

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
    return 1;
  }
  ctx.csv = &csv;
  ctx.csv_on = !csv_path.empty();
  if (ctx.csv_on) {
    csv.row("section,label,blocks,block_bytes,value,unit\n");
  }

  fs::create_directories(ctx.root);
  int rc = 0;
  if (flags.get_bool("crash-smoke")) {
    rc = crash_smoke(ctx);
  } else if (flags.get_bool("paper-scale")) {
    rc = paper_scale(ctx, flags.get_int("ram-budget-mb", 512));
  } else {
    bench_writes(ctx);
    bench_reads(ctx);
    bench_recovery(ctx);
  }
  fs::remove_all(ctx.root);

  if (ctx.csv_on && !csv.close()) {
    std::perror("csv close");
    return 1;
  }
  return rc;
}
