// Figure 13(e), Experiment B.2: normalized EAR/RR throughput vs the number
// of rack failures EAR tolerates.  RR keeps its n-rack spread; EAR trades
// rack-level fault tolerance for locality via the c parameter and target
// racks (§III-D): tolerating f failures needs at most c = floor((n-k)/f)
// blocks per rack, and the stripe then only occupies ceil(n/c) racks.
//
// Paper expectation: tolerating fewer rack failures (larger c) keeps more of
// the stripe in fewer racks and raises both gains — encoding 70% -> 82%,
// write 26% -> 48% from four failures down to one.
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 5));

  bench::RatioCsv csv(flags);

  bench::header("Figure 13(e)",
                "EAR/RR normalized throughput vs EAR rack fault tolerance");
  bench::print_ratio_header();
  struct Point {
    int failures;
    int c;
  };
  for (const Point p : {Point{4, 1}, Point{2, 2}, Point{1, 4}}) {
    auto cfg = bench::default_b2_config(flags);
    cfg.placement.c = p.c;
    cfg.placement.target_racks =
        (cfg.placement.code.n + p.c - 1) / p.c;  // ceil(n / c)
    const std::string label = std::to_string(p.failures) + " failures (c=" +
                              std::to_string(p.c) + ")";
    const auto samples = bench::run_pairs(cfg, runs);
    bench::print_ratio_row(label, samples);
    csv.add("vary_c", label, samples);
  }
  bench::note("paper: gains rise as tolerated failures drop: encode "
              "70.1%->82.1%, write 26.3%->48.3%");
  bench::note("recovery trade-off (analysis): cross-rack blocks per repair = "
              "k - c");
  return csv.close();
}
