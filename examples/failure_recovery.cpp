// Failure and recovery walkthrough: demonstrates why EAR's encoded layouts
// survive rack failures without relocation while random replication's may
// not, then exercises degraded reads and repair under escalating failures.
//
// Build & run:  ./build/examples/failure_recovery
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "cfs/minicfs.h"
#include "common/rng.h"
#include "placement/monitor.h"

namespace {

using namespace ear;

// Fills the cluster until `stripes` seal, returning content for verification.
std::map<BlockId, std::vector<uint8_t>> load(cfs::MiniCfs& cluster,
                                             size_t stripes, uint64_t seed) {
  Rng rng(seed);
  std::map<BlockId, std::vector<uint8_t>> contents;
  while (cluster.sealed_stripes().size() < stripes) {
    std::vector<uint8_t> block(
        static_cast<size_t>(cluster.config().block_size));
    for (auto& byte : block) byte = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cluster.write_block(block);
    contents[id] = std::move(block);
  }
  return contents;
}

NodeId first_alive(const cfs::MiniCfs& cluster) {
  for (NodeId n = 0; n < cluster.topology().node_count(); ++n) {
    if (cluster.node_alive(n)) return n;
  }
  return kInvalidNode;
}

}  // namespace

int main() {
  cfs::CfsConfig config;
  config.racks = 12;
  config.nodes_per_rack = 3;
  config.placement.code = CodeParams{9, 6};  // tolerates any 3 lost blocks
  config.placement.replication = 3;
  config.placement.c = 1;
  config.block_size = 128_KB;
  config.seed = 99;

  // ---- Part 1: availability audit, RR vs EAR -------------------------------
  std::printf("== Part 1: post-encoding rack fault tolerance audit ==\n");
  for (const bool use_ear : {false, true}) {
    config.use_ear = use_ear;
    const Topology topo(config.racks, config.nodes_per_rack);
    cfs::MiniCfs cluster(config,
                         std::make_unique<cfs::InstantTransport>(topo));
    load(cluster, 20, 5);
    const PlacementMonitor monitor(topo, config.placement.code);

    int safe = 0, violating = 0, relocations = 0;
    for (const StripeId s : cluster.sealed_stripes()) {
      cluster.encode_stripe(s);
      const cfs::StripeMeta meta = cluster.stripe_meta(s);
      StripeLayout layout;
      for (const BlockId b : meta.data_blocks) {
        layout.nodes.push_back(cluster.block_locations(b)[0]);
      }
      for (const BlockId b : meta.parity_blocks) {
        layout.nodes.push_back(cluster.block_locations(b)[0]);
      }
      const auto moves = monitor.plan_relocations(layout, config.placement.c);
      if (moves.empty()) {
        ++safe;
      } else {
        ++violating;
        relocations += static_cast<int>(moves.size());
      }
    }
    std::printf("  %s: %d stripes safe, %d need relocation (%d block moves "
                "owed)\n",
                use_ear ? "EAR" : "RR ", safe, violating, relocations);
  }

  // ---- Part 2: escalating failures under EAR --------------------------------
  std::printf("\n== Part 2: degraded reads and repair under failures ==\n");
  config.use_ear = true;
  const Topology topo(config.racks, config.nodes_per_rack);
  cfs::MiniCfs cluster(config, std::make_unique<cfs::InstantTransport>(topo));
  const auto contents = load(cluster, 4, 17);
  const StripeId stripe = cluster.sealed_stripes().front();
  cluster.encode_stripe(stripe);
  const cfs::StripeMeta meta = cluster.stripe_meta(stripe);

  // Kill the racks of the first three blocks of the stripe — exactly the
  // n - k = 3 losses the code tolerates.
  std::set<RackId> killed;
  for (int i = 0; i < 3; ++i) {
    const RackId r = topo.rack_of(
        cluster.block_locations(meta.data_blocks[static_cast<size_t>(i)])[0]);
    cluster.kill_rack(r);
    killed.insert(r);
  }
  std::printf("  killed %zu racks holding 3 of the stripe's blocks\n",
              killed.size());

  const NodeId reader = first_alive(cluster);
  int recovered = 0;
  for (const BlockId b : meta.data_blocks) {
    if (cluster.read_block(b, reader) == contents.at(b)) ++recovered;
  }
  std::printf("  degraded reads: %d/%zu data blocks recovered intact\n",
              recovered, meta.data_blocks.size());

  // Repair the three lost blocks onto live nodes in unused racks.
  std::set<RackId> used;
  for (const BlockId b : meta.data_blocks) {
    const auto locs = cluster.block_locations(b);
    if (!locs.empty() && cluster.node_alive(locs[0])) {
      used.insert(topo.rack_of(locs[0]));
    }
  }
  for (const BlockId b : meta.parity_blocks) {
    const auto locs = cluster.block_locations(b);
    if (!locs.empty() && cluster.node_alive(locs[0])) {
      used.insert(topo.rack_of(locs[0]));
    }
  }
  int repaired = 0;
  for (int i = 0; i < 3; ++i) {
    const BlockId victim = meta.data_blocks[static_cast<size_t>(i)];
    for (NodeId n = 0; n < topo.node_count(); ++n) {
      if (!cluster.node_alive(n) || used.count(topo.rack_of(n))) continue;
      cluster.repair_block(victim, n);
      used.insert(topo.rack_of(n));
      ++repaired;
      break;
    }
  }
  std::printf("  repaired %d blocks onto fresh racks\n", repaired);

  // One more rack failure is now survivable again.
  const RackId another = *used.begin();
  cluster.kill_rack(another);
  const NodeId reader2 = first_alive(cluster);
  std::printf("  after killing one more rack, block 0 reads back %s\n",
              cluster.read_block(meta.data_blocks[0], reader2) ==
                      contents.at(meta.data_blocks[0])
                  ? "intact"
                  : "CORRUPTED");
  return 0;
}
