// Large-scale discrete-event simulation comparing random replication (RR)
// against encoding-aware replication (EAR) — the paper's Experiment B.2
// scenario, parameterized from the command line.
//
//   ./build/examples/cluster_simulation                 # defaults
//   ./build/examples/cluster_simulation --k 12 --m 2 --write-rate 4
//   ./build/examples/cluster_simulation --racks 40 --nodes-per-rack 10
//
// Prints encode/write throughput, write response times, cross-rack traffic
// and the EAR layout-retry statistics for both policies.
#include <cstdio>

#include "common/flags.h"
#include "sim/cluster.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);

  sim::SimConfig config;
  config.racks = static_cast<int>(flags.get_int("racks", 20));
  config.nodes_per_rack =
      static_cast<int>(flags.get_int("nodes-per-rack", 20));
  const int k = static_cast<int>(flags.get_int("k", 10));
  const int m = static_cast<int>(flags.get_int("m", 4));
  config.placement.code = CodeParams{k + m, k};
  config.placement.replication =
      static_cast<int>(flags.get_int("replication", 3));
  config.placement.c = static_cast<int>(flags.get_int("c", 1));
  config.placement.target_racks =
      static_cast<int>(flags.get_int("target-racks", 0));
  config.net.node_bw = gbps(flags.get_double("gbps", 1.0));
  config.net.rack_uplink_bw = config.net.node_bw;
  config.write_rate = flags.get_double("write-rate", 1.0);
  config.background_rate = flags.get_double("background-rate", 1.0);
  config.encode_processes =
      static_cast<int>(flags.get_int("encode-processes", 20));
  config.stripes_per_process =
      static_cast<int>(flags.get_int("stripes-per-process", 10));
  config.simulate_relocation = flags.get_bool("charge-relocation");
  config.seed = static_cast<uint64_t>(flags.get_int("seed", 1));

  std::printf("simulating %d racks x %d nodes, (%d,%d) code, r=%d, c=%d, "
              "%d x %d stripes\n\n",
              config.racks, config.nodes_per_rack, k + m, k,
              config.placement.replication, config.placement.c,
              config.encode_processes, config.stripes_per_process);

  sim::SimResult results[2];
  for (const bool use_ear : {false, true}) {
    config.use_ear = use_ear;
    sim::ClusterSim sim(config);
    results[use_ear ? 1 : 0] = sim.run();
    const sim::SimResult& r = results[use_ear ? 1 : 0];
    std::printf("%s:\n", use_ear ? "EAR" : "RR");
    std::printf("  encoding: %.1f MB/s over %.1f s (%d stripes)\n",
                r.encode_throughput_mbps, r.encode_end - r.encode_begin,
                r.stripes_encoded);
    std::printf("  cross-rack downloads during encoding: %ld\n",
                (long)r.encoding_cross_rack_downloads);
    std::printf("  write response: %.2f s before encoding, %.2f s during\n",
                r.write_response_before.mean(),
                r.write_response_during.mean());
    std::printf("  cross-rack bytes: %.1f GB, intra-rack: %.1f GB\n",
                r.cross_rack_bytes / 1e9, r.intra_rack_bytes / 1e9);
    if (use_ear) {
      std::printf("  EAR layout draws per block: %.3f\n",
                  r.mean_layout_iterations);
    }
    if (config.simulate_relocation) {
      std::printf("  relocations owed: %ld (%.1f GB)\n", (long)r.relocations,
                  r.relocation_bytes / 1e9);
    }
    std::printf("\n");
  }

  std::printf("EAR over RR: encoding throughput x%.2f, write response "
              "during encoding x%.2f\n",
              results[1].encode_throughput_mbps /
                  results[0].encode_throughput_mbps,
              results[0].write_response_during.mean() /
                  results[1].write_response_during.mean());
  return 0;
}
