// Quickstart: the full replication -> erasure-coding lifecycle on the
// in-process clustered file system.
//
//   1. bring up a 10-rack cluster with encoding-aware replication (EAR);
//   2. write a file of blocks (3-way replicated);
//   3. run the asynchronous encoding operation on a sealed stripe
//      ((8,6) Reed-Solomon) — note it needs zero cross-rack downloads;
//   4. kill a node and read the lost block back through erasure decoding.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <memory>

#include "cfs/minicfs.h"
#include "common/rng.h"

int main() {
  using namespace ear;

  cfs::CfsConfig config;
  config.racks = 10;
  config.nodes_per_rack = 4;
  config.placement.code = CodeParams{8, 6};  // 6 data + 2 parity blocks
  config.placement.replication = 3;
  config.placement.c = 1;  // at most 1 block of a stripe per rack
  config.use_ear = true;
  config.block_size = 256_KB;
  config.seed = 2026;

  const Topology topo(config.racks, config.nodes_per_rack);
  cfs::MiniCfs cluster(config,
                       std::make_unique<cfs::InstantTransport>(topo));
  std::printf("cluster up: %s, (n,k)=(%d,%d), %d-way replication, EAR\n",
              topo.describe().c_str(), config.placement.code.n,
              config.placement.code.k, config.placement.replication);

  // ---- 2. write blocks until a stripe seals -------------------------------
  Rng rng(7);
  std::map<BlockId, std::vector<uint8_t>> contents;
  while (cluster.sealed_stripes().empty()) {
    std::vector<uint8_t> block(static_cast<size_t>(config.block_size));
    for (auto& byte : block) byte = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cluster.write_block(block);
    contents[id] = std::move(block);
    std::printf("  wrote block %ld -> replicas on nodes", (long)id);
    for (const NodeId n : cluster.block_locations(id)) {
      std::printf(" %d(rack %d)", n, topo.rack_of(n));
    }
    std::printf("\n");
  }

  // ---- 3. encode the sealed stripe ----------------------------------------
  const StripeId stripe = cluster.sealed_stripes().front();
  cluster.encode_stripe(stripe);
  const cfs::StripeMeta meta = cluster.stripe_meta(stripe);
  std::printf("encoded stripe %ld: %zu data + %zu parity blocks, "
              "%ld cross-rack downloads (EAR guarantees 0)\n",
              (long)stripe, meta.data_blocks.size(),
              meta.parity_blocks.size(),
              (long)cluster.encode_cross_rack_downloads());
  for (const BlockId b : meta.data_blocks) {
    const auto locs = cluster.block_locations(b);
    std::printf("  data block %ld now single copy on node %d (rack %d)\n",
                (long)b, locs[0], topo.rack_of(locs[0]));
  }

  // ---- 4. fail a node, read through decoding ------------------------------
  const BlockId victim = meta.data_blocks[0];
  const NodeId dead = cluster.block_locations(victim)[0];
  cluster.kill_node(dead);
  std::printf("killed node %d (the only copy of block %ld)\n", dead,
              (long)victim);

  const NodeId reader = (dead + 1) % topo.node_count();
  const ear::datapath::BlockBuffer recovered =
      cluster.read_block(victim, reader);
  std::printf("degraded read of block %ld: %s\n", (long)victim,
              recovered == contents.at(victim) ? "content matches original"
                                               : "CORRUPTED");

  // Repair the block onto a healthy node and verify again.
  const NodeId target = (dead + 2) % topo.node_count();
  cluster.repair_block(victim, target);
  std::printf("repaired block %ld onto node %d; locations now:", (long)victim,
              target);
  for (const NodeId n : cluster.block_locations(victim)) {
    std::printf(" %d", n);
  }
  std::printf("\n");
  return 0;
}
