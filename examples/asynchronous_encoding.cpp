// Asynchronous encoding on the real-time testbed: a Poisson write stream
// runs while the RaidNode converts replicated stripes to erasure-coded form
// through rate-limited links — the paper's Experiment A.2 as a live demo.
//
//   ./build/examples/asynchronous_encoding              # EAR (default)
//   ./build/examples/asynchronous_encoding --policy rr  # random replication
//
// Watch the per-request write latencies jump when encoding starts and
// compare the two policies' encoding times.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "cfs/workload.h"
#include "common/flags.h"
#include "common/rng.h"
#include "placement/replica_layout.h"

int main(int argc, char** argv) {
  using namespace ear;
  const FlagParser flags(argc, argv);
  const bool use_ear = flags.get_string("policy", "ear") != "rr";

  cfs::CfsConfig config;
  config.racks = 12;
  config.nodes_per_rack = 1;  // the paper's testbed shape
  config.placement.code = CodeParams{10, 8};
  config.placement.replication = 2;
  config.placement.c = 1;
  config.use_ear = use_ear;
  config.block_size = 1_MB;
  config.seed = 11;

  const Topology topo(config.racks, config.nodes_per_rack);
  cfs::MiniCfs cluster(config,
                       std::make_unique<cfs::InstantTransport>(topo));

  // Pre-load 12 stripes instantly (they were written long ago), then switch
  // to the emulated 10 MB/s network.
  Rng rng(3);
  std::vector<uint8_t> payload(static_cast<size_t>(config.block_size), 0xEA);
  while (cluster.sealed_stripes().size() < 12) {
    cluster.write_block(payload, random_node(topo, rng));
  }
  auto stripes = cluster.sealed_stripes();
  stripes.resize(12);

  cfs::ThrottleConfig throttle;
  throttle.node_bw = 10e6;
  throttle.rack_uplink_bw = 10e6;
  throttle.disk_bw = 13e6;
  throttle.chunk_size = 64_KB;
  cluster.set_transport(
      std::make_unique<cfs::ThrottledTransport>(topo, throttle));

  std::printf("policy: %s — writing at 3 blocks/s, encoding starts at t=2s\n",
              use_ear ? "EAR" : "RR");

  cfs::WriteWorkload writes(cluster, /*rate=*/3.0, /*seed=*/5);
  writes.start();
  std::this_thread::sleep_for(std::chrono::seconds(2));

  cfs::RaidNode raid(cluster, /*map_slots=*/12);
  const cfs::EncodeReport report = raid.encode_stripes(stripes);
  writes.stop();

  std::printf("encoding: %.2f s, %.1f MB/s, %ld cross-rack downloads\n",
              report.duration_s, report.throughput_mbps,
              (long)report.cross_rack_downloads);
  std::printf("write latency timeline (issue time -> response):\n");
  for (const auto& [issue, response] : writes.samples()) {
    std::printf("  t=%5.2f s  %6.3f s %s\n", issue, response,
                issue < 2.0 ? "" : "(encoding running)");
  }
  std::printf("cross-rack bytes moved: %.1f MB\n",
              cluster.transport().cross_rack_bytes() / 1e6);
  return 0;
}
