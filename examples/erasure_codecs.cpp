// Tour of the coding substrates: systematic Reed-Solomon (Vandermonde and
// Cauchy), the XOR-only Cauchy bit-matrix codec (CRS), and Azure-style
// Local Repairable Codes (LRC).  Encodes the same data with each, breaks
// things, and repairs them — printing what each code had to read.
//
// Build & run:  ./build/examples/erasure_codecs
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "erasure/crs.h"
#include "erasure/lrc.h"
#include "erasure/rs.h"

namespace {

using namespace ear;
using Clock = std::chrono::steady_clock;

std::vector<std::vector<uint8_t>> random_blocks(int count, size_t size) {
  Rng rng(2026);
  std::vector<std::vector<uint8_t>> out(static_cast<size_t>(count));
  for (auto& b : out) {
    b.resize(size);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.uniform(256));
  }
  return out;
}

double mbps(size_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace

int main() {
  constexpr int k = 10, n = 14;
  constexpr size_t kBlock = 1 << 20;
  const auto data = random_blocks(k, kBlock);
  std::vector<erasure::BlockView> data_views(data.begin(), data.end());

  std::printf("encoding %d x 1 MiB data blocks into (%d,%d) stripes\n\n", k,
              n, k);

  // ---- Reed-Solomon, both constructions ------------------------------------
  for (const auto construction : {erasure::Construction::kVandermonde,
                                  erasure::Construction::kCauchy}) {
    const erasure::RSCode rs(n, k, construction);
    std::vector<std::vector<uint8_t>> parity(n - k,
                                             std::vector<uint8_t>(kBlock));
    std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
    const auto t0 = Clock::now();
    rs.encode(data_views, pv);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("RS %-12s encode: %7.1f MB/s\n",
                construction == erasure::Construction::kCauchy
                    ? "(Cauchy)"
                    : "(Vandermonde)",
                mbps(kBlock * k, s));

    // Lose 4 arbitrary blocks, rebuild all data from the rest.
    std::vector<std::vector<uint8_t>> all = data;
    all.insert(all.end(), parity.begin(), parity.end());
    std::vector<int> ids{1, 2, 4, 5, 6, 8, 9, 10, 12, 13};  // k survivors
    std::vector<erasure::BlockView> available;
    for (const int id : ids) available.emplace_back(all[(size_t)id]);
    std::vector<std::vector<uint8_t>> out(k, std::vector<uint8_t>(kBlock));
    std::vector<erasure::MutBlockView> ov(out.begin(), out.end());
    std::vector<int> wanted;
    for (int i = 0; i < k; ++i) wanted.push_back(i);
    const bool ok = rs.reconstruct(ids, available, wanted, ov);
    bool intact = ok;
    for (int i = 0; i < k && intact; ++i) {
      intact = out[(size_t)i] == data[(size_t)i];
    }
    std::printf("  lost blocks {0,3,7,11}: decode from any k -> %s\n",
                intact ? "all data intact" : "FAILED");
  }

  // ---- CRS: XOR-only encode --------------------------------------------------
  {
    const erasure::CRSCode crs(n, k);
    std::vector<std::vector<uint8_t>> parity(n - k,
                                             std::vector<uint8_t>(kBlock));
    std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
    const auto t0 = Clock::now();
    crs.encode(data_views, pv);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("CRS (bit-matrix) encode: %7.1f MB/s — pure XOR, %lld "
                "scheduled packet-XORs\n",
                mbps(kBlock * k, s),
                static_cast<long long>(crs.schedule_xor_count()));
  }

  // ---- LRC: cheap single-block repair ----------------------------------------
  {
    const erasure::LRCCode lrc(10, 2, 2);
    const auto lrc_data = random_blocks(lrc.k(), kBlock);
    std::vector<erasure::BlockView> dv(lrc_data.begin(), lrc_data.end());
    std::vector<std::vector<uint8_t>> parity(
        static_cast<size_t>(lrc.l() + lrc.g()),
        std::vector<uint8_t>(kBlock));
    std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
    lrc.encode(dv, pv);
    std::vector<std::vector<uint8_t>> all = lrc_data;
    all.insert(all.end(), parity.begin(), parity.end());

    const int lost = 3;
    const auto plan = lrc.repair_plan(lost);
    std::vector<erasure::BlockView> sources;
    for (const int id : plan) sources.emplace_back(all[(size_t)id]);
    std::vector<uint8_t> rebuilt(kBlock);
    const auto t0 = Clock::now();
    lrc.repair(lost, sources, rebuilt);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("LRC(10,2,2) local repair of block %d: read %zu blocks "
                "(RS needs %d), %7.1f MB/s, %s\n",
                lost, plan.size(), lrc.k(), mbps(kBlock, s),
                rebuilt == lrc_data[lost] ? "content intact" : "FAILED");
  }
  return 0;
}
